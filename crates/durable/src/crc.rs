//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the
//! checksum guarding every WAL record and the snapshot footer.
//!
//! Table-driven, one byte per step. Matches the ubiquitous zlib/`cksum
//! -o3` CRC so externally-written tooling can validate the files.

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far (does not consume the
    /// state; more bytes may still be fed).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello durable world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }
}
