//! MFP — Most Frequent Path (Luo, Tan, Chen, Ni; SIGMOD 2013; paper
//! ref \[13\]).
//!
//! The original work mines the time-period-based most frequent path: given
//! a departure-time period, the "footmark" of each road segment is the
//! number of trajectories traversing it during that period, and the MFP is
//! the path whose *bottleneck* footmark is maximal (the weakest segment is
//! as strongly supported as possible), tie-broken toward shorter routes.
//!
//! Our adaptation (recorded in DESIGN.md): the bottleneck (max–min
//! footmark) objective is kept as a diagnostic ([`best_bottleneck`]), but
//! the returned route minimises saturating-frequency-discounted travel
//! time `Σ travel_time(e) / (1 + β·f/(f+f̄))` over the period-filtered
//! footmark graph (`f̄` = mean positive footmark; the bounded discount
//! rewards popular segments without letting mega-corridors warp the
//! route). On synthetic demand the literal bottleneck objective
//! degenerates whenever an OD pair strays off the commuting corridors
//! (B* collapses to the sparsest necessary cut and stops constraining the
//! route), whereas frequency-discounted time consistently follows the
//! most-driven corridors — the behaviour the CrowdPlanner evaluation
//! attributes to MFP.

use crate::transfer::TransferNetwork;
use cp_roadnet::routing::{
    dijkstra_path, shortest_path_tree, shortest_path_tree_to_all, DijkstraResult,
};
use cp_roadnet::{NodeId, Path, RoadGraph, RoadNetError};
use cp_traj::{TimeOfDay, Trip};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Parameters of the MFP search.
#[derive(Debug, Clone, Copy)]
pub struct MfpParams {
    /// Half-width of the departure-time window, seconds.
    pub period_half_width: f64,
    /// Frequency weight β of the stage-2 tie-break.
    pub beta: f64,
}

impl Default for MfpParams {
    fn default() -> Self {
        MfpParams {
            period_half_width: 2.0 * 3600.0,
            beta: 1.2,
        }
    }
}

/// Max-heap entry ordered by bottleneck width.
#[derive(PartialEq)]
struct WidestEntry {
    width: f64,
    node: NodeId,
}
impl Eq for WidestEntry {}
impl Ord for WidestEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.width
            .partial_cmp(&other.width)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}
impl PartialOrd for WidestEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Best achievable bottleneck frequency from `from` to `to` (widest path).
pub fn best_bottleneck(graph: &RoadGraph, tn: &TransferNetwork, from: NodeId, to: NodeId) -> f64 {
    let n = graph.node_count();
    let mut width = vec![f64::NEG_INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    width[from.index()] = f64::INFINITY;
    heap.push(WidestEntry {
        width: f64::INFINITY,
        node: from,
    });
    while let Some(WidestEntry { width: w, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == to {
            return w;
        }
        for &e in graph.out_edges(node) {
            let edge = graph.edge(e);
            let nw = w.min(tn.edge_frequency(e));
            if nw > width[edge.to.index()] {
                width[edge.to.index()] = nw;
                heap.push(WidestEntry {
                    width: nw,
                    node: edge.to,
                });
            }
        }
    }
    width[to.index()]
}

/// Computes the time-period most frequent path on a pre-filtered transfer
/// network (the caller already restricted trips to the period).
pub fn most_frequent_path_on(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    to: NodeId,
    params: &MfpParams,
) -> Result<Path, RoadNetError> {
    if from == to {
        return Err(RoadNetError::NoPath { from, to });
    }
    // Saturating frequency discount: heavily-driven segments within the
    // time period are cheaper (at most 1 + beta times cheaper), so the
    // search clings to the period's popular corridors without detouring
    // wildly to reach them.
    let half = tn.mean_positive_frequency().max(1.0);
    dijkstra_path(graph, from, to, |e| {
        let f = tn.edge_frequency(e);
        graph.edge(e).travel_time() / (1.0 + params.beta * f / (f + half))
    })
}

/// Computes the time-period most frequent paths from one origin to many
/// destinations on a pre-filtered transfer network with a **single**
/// frequency-discounted expansion — byte-identical, per destination, to
/// [`most_frequent_path_on`] (the single-target search is a prefix of
/// the multi-target one).
pub fn most_frequent_paths_on(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    tos: &[NodeId],
    params: &MfpParams,
) -> Vec<Result<Path, RoadNetError>> {
    let half = tn.mean_positive_frequency().max(1.0);
    let cost = |e| {
        let f = tn.edge_frequency(e);
        graph.edge(e).travel_time() / (1.0 + params.beta * f / (f + half))
    };
    let targets: Vec<NodeId> = tos.iter().copied().filter(|&t| t != from).collect();
    let tree = shortest_path_tree_to_all(graph, from, &targets, cost);
    tos.iter()
        .map(|&to| {
            if to == from {
                return Err(RoadNetError::NoPath { from, to });
            }
            tree.path_to(graph, to)
                .ok_or(RoadNetError::NoPath { from, to })
        })
        .collect()
}

/// Expands the **full** frequency-discounted tree from `from` over a
/// pre-filtered period transfer network — the period-dependent half of
/// a cached origin-mining artifact. `DijkstraResult::path_to` on the
/// returned tree is byte-identical to [`most_frequent_path_on`] for
/// every reachable target (settle-order prefix argument), so one
/// expansion per `(origin, period)` answers any destination.
pub fn frequency_discounted_tree(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    params: &MfpParams,
) -> DijkstraResult {
    let half = tn.mean_positive_frequency().max(1.0);
    shortest_path_tree(graph, from, None, |e| {
        let f = tn.edge_frequency(e);
        graph.edge(e).travel_time() / (1.0 + params.beta * f / (f + half))
    })
}

/// Full MFP query: filters `trips` to the departure period around
/// `departure`, builds the period transfer network, and searches.
pub fn most_frequent_path(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    to: NodeId,
    departure: TimeOfDay,
    params: &MfpParams,
) -> Result<Path, RoadNetError> {
    let tn = TransferNetwork::build(graph, trips, Some((departure, params.period_half_width)));
    most_frequent_path_on(graph, &tn, from, to, params)
}

/// Full fused MFP query for one origin and many destinations sharing a
/// departure period: the O(|trips|) period filter and transfer-network
/// aggregation — by far the dominant cost of a per-request
/// [`most_frequent_path`] call — run **once**, followed by one
/// multi-target search. Per destination, byte-identical to
/// [`most_frequent_path`].
pub fn most_frequent_paths(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    tos: &[NodeId],
    departure: TimeOfDay,
    params: &MfpParams,
) -> Vec<Result<Path, RoadNetError>> {
    let tn = TransferNetwork::build(graph, trips, Some((departure, params.period_half_width)));
    most_frequent_paths_on(graph, &tn, from, tos, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset, TransferNetwork) {
        let city = generate_city(&CityParams::small(), 29).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 29).unwrap();
        let tn = TransferNetwork::build(&city.graph, &ds.trips, None);
        (city, ds, tn)
    }

    #[test]
    fn best_bottleneck_dominates_any_concrete_path() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let b = best_bottleneck(g, &tn, NodeId(0), NodeId(59));
        assert!(b >= 0.0);
        // No concrete path can beat the widest-path optimum.
        {
            let cost = cp_roadnet::routing::distance_cost(g);
            let p = cp_roadnet::routing::dijkstra_path(g, NodeId(0), NodeId(59), cost).unwrap();
            let min_f = p
                .edges()
                .iter()
                .map(|&e| tn.edge_frequency(e))
                .fold(f64::INFINITY, f64::min);
            assert!(min_f <= b + 1e-9);
        }
    }

    #[test]
    fn mfp_follows_popular_corridors() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let mfp =
            most_frequent_path_on(g, &tn, NodeId(0), NodeId(59), &MfpParams::default()).unwrap();
        let avg_freq = |p: &Path| {
            p.edges().iter().map(|&e| tn.edge_frequency(e)).sum::<f64>() / p.len() as f64
        };
        let shortest = cp_roadnet::routing::dijkstra_path(
            g,
            NodeId(0),
            NodeId(59),
            cp_roadnet::routing::distance_cost(g),
        )
        .unwrap();
        assert!(
            avg_freq(&mfp) >= avg_freq(&shortest) - 1e-9,
            "MFP must be at least as data-supported as the shortest path"
        );
    }

    #[test]
    fn mfp_is_optimal_under_its_own_cost() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MfpParams::default();
        let mfp = most_frequent_path_on(g, &tn, NodeId(3), NodeId(42), &params).unwrap();
        let half0 = tn.mean_positive_frequency().max(1.0);
        let cost = |p: &Path| {
            p.edges()
                .iter()
                .map(|&e| {
                    let f = tn.edge_frequency(e);
                    g.edge(e).travel_time() / (1.0 + params.beta * f / (f + half0))
                })
                .sum::<f64>()
        };
        let half = tn.mean_positive_frequency().max(1.0);
        let alt = cp_roadnet::routing::dijkstra_path(g, NodeId(3), NodeId(42), |e| {
            let f = tn.edge_frequency(e);
            g.edge(e).travel_time() / (1.0 + params.beta * f / (f + half))
        })
        .unwrap();
        assert!((cost(&alt) - cost(&mfp)).abs() < 1e-9);
    }

    #[test]
    fn fused_batch_matches_per_request_mfp() {
        let (city, ds, tn) = setup();
        let g = &city.graph;
        let params = MfpParams::default();
        let from = NodeId(7);
        let tos: Vec<NodeId> = [59u32, 0, 7, 31, 44].map(NodeId).to_vec();
        // Pre-filtered network path.
        let fused = most_frequent_paths_on(g, &tn, from, &tos, &params);
        for (&to, got) in tos.iter().zip(&fused) {
            match most_frequent_path_on(g, &tn, from, to, &params) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want, "to {to:?}"),
                Err(_) => assert!(got.is_err(), "to {to:?}"),
            }
        }
        // Full query path (shared period filter + aggregation).
        let dep = TimeOfDay::from_hours(8.0);
        let fused = most_frequent_paths(g, &ds.trips, from, &tos, dep, &params);
        for (&to, got) in tos.iter().zip(&fused) {
            match most_frequent_path(g, &ds.trips, from, to, dep, &params) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want, "to {to:?}"),
                Err(_) => assert!(got.is_err(), "to {to:?}"),
            }
        }
    }

    #[test]
    fn frequency_discounted_tree_matches_per_request_mfp() {
        let (city, ds, _) = setup();
        let g = &city.graph;
        let params = MfpParams::default();
        let from = NodeId(7);
        let period = TransferNetwork::build(
            g,
            &ds.trips,
            Some((TimeOfDay::from_hours(8.0), params.period_half_width)),
        );
        let tree = frequency_discounted_tree(g, &period, from, &params);
        for b in [59u32, 0, 31, 44] {
            let want = most_frequent_path_on(g, &period, from, NodeId(b), &params).unwrap();
            let got = tree.path_to(g, NodeId(b)).expect("reachable");
            assert_eq!(got, want, "to {b}");
        }
    }

    #[test]
    fn time_period_changes_the_network() {
        let (city, ds, _) = setup();
        let g = &city.graph;
        let params = MfpParams {
            period_half_width: 3600.0,
            ..MfpParams::default()
        };
        // Morning and midnight periods see different support; both must
        // still return a path.
        let m = most_frequent_path(
            g,
            &ds.trips,
            NodeId(0),
            NodeId(59),
            TimeOfDay::from_hours(8.0),
            &params,
        )
        .unwrap();
        let n = most_frequent_path(
            g,
            &ds.trips,
            NodeId(0),
            NodeId(59),
            TimeOfDay::from_hours(3.0),
            &params,
        )
        .unwrap();
        assert!(m.is_simple() && n.is_simple());
    }

    #[test]
    fn empty_history_still_routes() {
        let (city, _, _) = setup();
        let g = &city.graph;
        let p = most_frequent_path(
            g,
            &[],
            NodeId(0),
            NodeId(9),
            TimeOfDay::from_hours(12.0),
            &MfpParams::default(),
        )
        .unwrap();
        // Degenerates to shortest path over zero-frequency edges.
        assert!(p.is_simple());
    }

    #[test]
    fn same_node_errors() {
        let (city, _, tn) = setup();
        assert!(most_frequent_path_on(
            &city.graph,
            &tn,
            NodeId(5),
            NodeId(5),
            &MfpParams::default()
        )
        .is_err());
    }
}
