//! LDR — Local-Driver Route (after Ceikute & Jensen, MDM 2013; paper
//! ref \[3\]).
//!
//! The CrowdPlanner paper lists "MPR, LDR and MFP" as its popular-route
//! miners but never expands LDR; its related-work section describes
//! citation \[3\] as mining "the individual popular routes from [a driver's]
//! historical trajectories … The recommended routes of this method reflect
//! certain people's preference." We therefore implement LDR with
//! *individual-driver* semantics:
//!
//! 1. find the trips whose endpoints are near the requested OD pair, and
//!    pick the **most experienced local driver** — the driver with the most
//!    such trips;
//! 2. if that driver has driven the exact requested OD, return their modal
//!    (most frequently driven) route for it;
//! 3. otherwise follow that driver's personal street usage: route with an
//!    edge cost of `travel_time / (1 + β · driver_frequency)`, which
//!    discounts the segments this driver habitually uses;
//! 4. with no local trips at all, degenerate to the fastest route.
//!
//! Because the answer channels one person's preference, LDR inherits that
//! person's idiosyncrasies — exactly why the paper treats it as one noisy
//! voice among several candidate sources. This interpretation is recorded
//! in DESIGN.md as a documented substitution.

use cp_roadnet::routing::dijkstra_path;
use cp_roadnet::{NodeId, Path, RoadGraph, RoadNetError};
use cp_traj::{DriverId, Trip};
use std::collections::HashMap;

/// Parameters of the LDR search.
#[derive(Debug, Clone, Copy)]
pub struct LdrParams {
    /// Trips whose endpoints are within this many metres of the request
    /// endpoints count as local.
    pub endpoint_radius: f64,
    /// Frequency discount strength β for the personal-usage search.
    pub beta: f64,
}

impl Default for LdrParams {
    fn default() -> Self {
        LdrParams {
            endpoint_radius: 800.0,
            beta: 0.8,
        }
    }
}

fn local_trips<'a>(
    graph: &RoadGraph,
    trips: &'a [Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> Vec<&'a Trip> {
    let fp = graph.position(from);
    let tp = graph.position(to);
    let r2 = params.endpoint_radius * params.endpoint_radius;
    trips
        .iter()
        .filter(|t| {
            graph.position(t.path.source()).distance_sq(&fp) <= r2
                && graph.position(t.path.destination()).distance_sq(&tp) <= r2
        })
        .collect()
}

/// Computes the local-driver route for the request `(from, to)`.
///
/// `trips` is the full trip history; the expert is chosen among drivers
/// with trips local to the request.
pub fn local_driver_route(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> Result<Path, RoadNetError> {
    if from == to {
        return Err(RoadNetError::NoPath { from, to });
    }
    let local = local_trips(graph, trips, from, to, params);

    // Stage 1: the most experienced local driver.
    let mut per_driver: HashMap<DriverId, usize> = HashMap::new();
    for t in &local {
        *per_driver.entry(t.driver).or_insert(0) += 1;
    }
    let expert = per_driver
        .into_iter()
        .max_by_key(|&(d, c)| (c, std::cmp::Reverse(d)))
        .map(|(d, _)| d);

    let Some(expert) = expert else {
        // Stage 4: nobody drives here — fastest route.
        return dijkstra_path(graph, from, to, |e| graph.edge(e).travel_time());
    };

    // Stage 2: the expert's modal route for the exact OD, if any.
    let mut exact: HashMap<&Path, usize> = HashMap::new();
    for t in &local {
        if t.driver == expert && t.path.source() == from && t.path.destination() == to {
            *exact.entry(&t.path).or_insert(0) += 1;
        }
    }
    if let Some((path, _)) = exact.into_iter().max_by(|a, b| {
        a.1.cmp(&b.1).then_with(|| {
            // Deterministic tie-break: prefer the shorter route.
            b.0.length(graph)
                .partial_cmp(&a.0.length(graph))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }) {
        return Ok(path.clone());
    }

    // Stage 3: follow the expert's personal street usage over their whole
    // history (their habits generalise beyond this OD pair).
    let mut freq = vec![0.0f64; graph.edge_count()];
    for t in trips.iter().filter(|t| t.driver == expert) {
        for &e in t.path.edges() {
            freq[e.index()] += 1.0;
        }
    }
    dijkstra_path(graph, from, to, |e| {
        graph.edge(e).travel_time() / (1.0 + params.beta * freq[e.index()])
    })
}

/// Number of local trips supporting the request — the support level that
/// route evaluation uses to judge whether LDR's answer is data-backed.
pub fn local_support(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> usize {
    local_trips(graph, trips, from, to, params).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 31).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 31).unwrap();
        (city, ds)
    }

    #[test]
    fn replays_a_driven_route_when_the_expert_drove_it() {
        let (city, ds) = setup();
        let g = &city.graph;
        // Pick an OD pair that actually occurs in the dataset.
        let trip = &ds.trips[0];
        let (a, b) = (trip.path.source(), trip.path.destination());
        let ldr = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        assert_eq!(ldr.source(), a);
        assert_eq!(ldr.destination(), b);
        // The route must belong to a single driver's observed behaviour or
        // their habit-weighted search; when an exact trip exists for the
        // expert it must be replayed verbatim.
        let experts: std::collections::HashMap<cp_traj::DriverId, usize> = {
            let mut m = std::collections::HashMap::new();
            let fp = g.position(a);
            let tp = g.position(b);
            for t in &ds.trips {
                if g.position(t.path.source()).distance(&fp) <= 800.0
                    && g.position(t.path.destination()).distance(&tp) <= 800.0
                {
                    *m.entry(t.driver).or_insert(0) += 1;
                }
            }
            m
        };
        assert!(!experts.is_empty());
    }

    #[test]
    fn expert_exact_route_is_their_modal_one() {
        let (city, ds) = setup();
        let g = &city.graph;
        let trip = &ds.trips[0];
        let (a, b) = (trip.path.source(), trip.path.destination());
        let ldr = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        // If the returned path was driven by someone with this exact OD,
        // no other exact-OD path of that driver may be strictly more
        // frequent.
        if let Some(t0) = ds.trips.iter().find(|t| t.path == ldr) {
            let d = t0.driver;
            let count = |p: &Path| {
                ds.trips
                    .iter()
                    .filter(|t| t.driver == d && t.path == *p)
                    .count()
            };
            for t in ds
                .trips
                .iter()
                .filter(|t| t.driver == d && t.path.source() == a && t.path.destination() == b)
            {
                assert!(count(&ldr) >= count(&t.path));
            }
        }
    }

    #[test]
    fn fallback_routes_without_exact_trips() {
        let (city, ds) = setup();
        let g = &city.graph;
        // Find an OD pair with no exact trip.
        let mut pair = None;
        'outer: for a in 0..60u32 {
            for b in 0..60u32 {
                if a == b {
                    continue;
                }
                if !ds
                    .trips
                    .iter()
                    .any(|t| t.path.source() == NodeId(a) && t.path.destination() == NodeId(b))
                {
                    pair = Some((NodeId(a), NodeId(b)));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("some OD pair must be untripped");
        let p = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), b);
        assert!(p.is_simple());
    }

    #[test]
    fn no_history_degenerates_to_fastest() {
        let (city, _) = setup();
        let g = &city.graph;
        let p = local_driver_route(g, &[], NodeId(0), NodeId(59), &LdrParams::default()).unwrap();
        let s = cp_roadnet::routing::dijkstra_path(
            g,
            NodeId(0),
            NodeId(59),
            cp_roadnet::routing::time_cost(g),
        )
        .unwrap();
        assert!((p.travel_time(g) - s.travel_time(g)).abs() < 1e-9);
    }

    #[test]
    fn support_counts_nearby_trips() {
        let (city, ds) = setup();
        let g = &city.graph;
        let trip = &ds.trips[0];
        let s = local_support(
            g,
            &ds.trips,
            trip.path.source(),
            trip.path.destination(),
            &LdrParams::default(),
        );
        assert!(s >= 1);
        let s0 = local_support(
            g,
            &ds.trips,
            trip.path.source(),
            trip.path.destination(),
            &LdrParams {
                endpoint_radius: 0.0,
                beta: 0.8,
            },
        );
        assert!(s0 <= s);
    }

    #[test]
    fn same_node_errors() {
        let (city, ds) = setup();
        assert!(local_driver_route(
            &city.graph,
            &ds.trips,
            NodeId(1),
            NodeId(1),
            &LdrParams::default()
        )
        .is_err());
    }
}
