//! LDR — Local-Driver Route (after Ceikute & Jensen, MDM 2013; paper
//! ref \[3\]).
//!
//! The CrowdPlanner paper lists "MPR, LDR and MFP" as its popular-route
//! miners but never expands LDR; its related-work section describes
//! citation \[3\] as mining "the individual popular routes from [a driver's]
//! historical trajectories … The recommended routes of this method reflect
//! certain people's preference." We therefore implement LDR with
//! *individual-driver* semantics:
//!
//! 1. find the trips whose endpoints are near the requested OD pair, and
//!    pick the **most experienced local driver** — the driver with the most
//!    such trips;
//! 2. if that driver has driven the exact requested OD, return their modal
//!    (most frequently driven) route for it;
//! 3. otherwise follow that driver's personal street usage: route with an
//!    edge cost of `travel_time / (1 + β · driver_frequency)`, which
//!    discounts the segments this driver habitually uses;
//! 4. with no local trips at all, degenerate to the fastest route.
//!
//! Because the answer channels one person's preference, LDR inherits that
//! person's idiosyncrasies — exactly why the paper treats it as one noisy
//! voice among several candidate sources. This interpretation is recorded
//! in DESIGN.md as a documented substitution.

use cp_roadnet::routing::{
    dijkstra_path, shortest_path_tree, shortest_path_tree_to_all, DijkstraResult,
};
use cp_roadnet::{NodeId, Path, RoadGraph, RoadNetError};
use cp_traj::{DriverId, Trip};
use std::collections::HashMap;

/// Parameters of the LDR search.
#[derive(Debug, Clone, Copy)]
pub struct LdrParams {
    /// Trips whose endpoints are within this many metres of the request
    /// endpoints count as local.
    pub endpoint_radius: f64,
    /// Frequency discount strength β for the personal-usage search.
    pub beta: f64,
}

impl Default for LdrParams {
    fn default() -> Self {
        LdrParams {
            endpoint_radius: 800.0,
            beta: 0.8,
        }
    }
}

fn local_trips<'a>(
    graph: &RoadGraph,
    trips: &'a [Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> Vec<&'a Trip> {
    let fp = graph.position(from);
    let tp = graph.position(to);
    let r2 = params.endpoint_radius * params.endpoint_radius;
    trips
        .iter()
        .filter(|t| {
            graph.position(t.path.source()).distance_sq(&fp) <= r2
                && graph.position(t.path.destination()).distance_sq(&tp) <= r2
        })
        .collect()
}

/// Stage 1: the most experienced local driver among `local` trips.
pub(crate) fn pick_expert(local: &[&Trip]) -> Option<DriverId> {
    let mut per_driver: HashMap<DriverId, usize> = HashMap::new();
    for t in local {
        *per_driver.entry(t.driver).or_insert(0) += 1;
    }
    per_driver
        .into_iter()
        .max_by_key(|&(d, c)| (c, std::cmp::Reverse(d)))
        .map(|(d, _)| d)
}

/// Stage 2: the expert's modal route for the exact OD, if any.
pub(crate) fn expert_modal_exact(
    graph: &RoadGraph,
    local: &[&Trip],
    expert: DriverId,
    from: NodeId,
    to: NodeId,
) -> Option<Path> {
    let mut exact: HashMap<&Path, usize> = HashMap::new();
    for t in local {
        if t.driver == expert && t.path.source() == from && t.path.destination() == to {
            *exact.entry(&t.path).or_insert(0) += 1;
        }
    }
    exact
        .into_iter()
        .max_by(|a, b| {
            a.1.cmp(&b.1).then_with(|| {
                // Deterministic tie-break: prefer the shorter route.
                b.0.length(graph)
                    .partial_cmp(&a.0.length(graph))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
        .map(|(path, _)| path.clone())
}

/// Stage 3 input: the expert's personal street-usage frequencies over
/// their whole history (their habits generalise beyond one OD pair).
fn expert_frequencies(graph: &RoadGraph, trips: &[Trip], expert: DriverId) -> Vec<f64> {
    // (shared by the per-request path, the fused batch path and the
    // artifact habit-tree builder below)
    let mut freq = vec![0.0f64; graph.edge_count()];
    for t in trips.iter().filter(|t| t.driver == expert) {
        for &e in t.path.edges() {
            freq[e.index()] += 1.0;
        }
    }
    freq
}

/// Computes the local-driver route for the request `(from, to)`.
///
/// `trips` is the full trip history; the expert is chosen among drivers
/// with trips local to the request.
pub fn local_driver_route(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> Result<Path, RoadNetError> {
    if from == to {
        return Err(RoadNetError::NoPath { from, to });
    }
    let local = local_trips(graph, trips, from, to, params);

    let Some(expert) = pick_expert(&local) else {
        // Stage 4: nobody drives here — fastest route.
        return dijkstra_path(graph, from, to, |e| graph.edge(e).travel_time());
    };

    if let Some(path) = expert_modal_exact(graph, &local, expert, from, to) {
        return Ok(path);
    }

    let freq = expert_frequencies(graph, trips, expert);
    dijkstra_path(graph, from, to, |e| {
        graph.edge(e).travel_time() / (1.0 + params.beta * freq[e.index()])
    })
}

/// Computes the local-driver routes from one origin to many
/// destinations, fusing the per-request work that depends only on the
/// origin side:
///
/// * the O(|trips|) locality scan keeps only one origin-side pass for
///   the whole batch (destination proximity is re-checked per target on
///   the surviving subset);
/// * the stage-3 habit search and the stage-4 fastest fallback are
///   single-source expansions, memoised per expert (habits) and per
///   batch (fastest) via [`shortest_path_tree_to_all`];
/// * stage-3 frequency tallies are memoised per expert, so two
///   destinations served by the same local driver scan their history
///   once.
///
/// Per destination, the result is byte-identical to
/// [`local_driver_route`]: the filters are order-preserving, expert
/// choice and modal-route extraction run the same code, and a
/// single-target Dijkstra is a prefix of the multi-target expansion.
pub fn local_driver_routes(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    tos: &[NodeId],
    params: &LdrParams,
) -> Vec<Result<Path, RoadNetError>> {
    let fp = graph.position(from);
    let r2 = params.endpoint_radius * params.endpoint_radius;
    // Shared origin-side prefilter (order-preserving, so per-target
    // destination filtering reproduces `local_trips` exactly).
    let origin_local: Vec<&Trip> = trips
        .iter()
        .filter(|t| graph.position(t.path.source()).distance_sq(&fp) <= r2)
        .collect();
    let targets: Vec<NodeId> = {
        let mut seen = vec![false; graph.node_count()];
        let mut out = Vec::new();
        for &t in tos {
            if t != from && !seen[t.index()] {
                seen[t.index()] = true;
                out.push(t);
            }
        }
        out
    };
    // Lazily-built shared expansions: the expert-habit tree per driver
    // (frequency tally folded into its cost) and the fastest fallback.
    let mut habit: HashMap<DriverId, DijkstraResult> = HashMap::new();
    let mut fastest: Option<DijkstraResult> = None;

    tos.iter()
        .map(|&to| {
            if to == from {
                return Err(RoadNetError::NoPath { from, to });
            }
            let tp = graph.position(to);
            let local: Vec<&Trip> = origin_local
                .iter()
                .copied()
                .filter(|t| graph.position(t.path.destination()).distance_sq(&tp) <= r2)
                .collect();
            let Some(expert) = pick_expert(&local) else {
                // Stage 4: one fastest tree serves every expert-less
                // destination in the batch.
                let tree = fastest.get_or_insert_with(|| {
                    shortest_path_tree_to_all(graph, from, &targets, |e| {
                        graph.edge(e).travel_time()
                    })
                });
                return tree
                    .path_to(graph, to)
                    .ok_or(RoadNetError::NoPath { from, to });
            };
            if let Some(path) = expert_modal_exact(graph, &local, expert, from, to) {
                return Ok(path);
            }
            let tree = habit.entry(expert).or_insert_with(|| {
                let freq = expert_frequencies(graph, trips, expert);
                shortest_path_tree_to_all(graph, from, &targets, |e| {
                    graph.edge(e).travel_time() / (1.0 + params.beta * freq[e.index()])
                })
            });
            tree.path_to(graph, to)
                .ok_or(RoadNetError::NoPath { from, to })
        })
        .collect()
}

/// Indices (into `trips`) of trips whose *source* endpoint is local to
/// `from` — the origin-side half of the [`local_trips`] filter, shared
/// across every destination a cached origin artifact will ever serve.
/// Order-preserving, so a per-destination re-filter of the indexed
/// subset reproduces `local_trips` exactly.
pub(crate) fn origin_local_indices(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    params: &LdrParams,
) -> Vec<u32> {
    let fp = graph.position(from);
    let r2 = params.endpoint_radius * params.endpoint_radius;
    trips
        .iter()
        .enumerate()
        .filter(|(_, t)| graph.position(t.path.source()).distance_sq(&fp) <= r2)
        .map(|(i, _)| i as u32)
        .collect()
}

/// The **full** stage-3 habit tree for one expert from `from`: their
/// street-usage frequencies folded into the cost, expanded exhaustively
/// so any destination can be answered later. `path_to` is
/// byte-identical to the stage-3 search of [`local_driver_route`].
pub(crate) fn expert_habit_tree(
    graph: &RoadGraph,
    trips: &[Trip],
    expert: DriverId,
    from: NodeId,
    params: &LdrParams,
) -> DijkstraResult {
    let freq = expert_frequencies(graph, trips, expert);
    shortest_path_tree(graph, from, None, |e| {
        graph.edge(e).travel_time() / (1.0 + params.beta * freq[e.index()])
    })
}

/// The **full** stage-4 fastest-fallback tree from `from`; `path_to` is
/// byte-identical to the expert-less fallback of [`local_driver_route`].
pub(crate) fn fastest_fallback_tree(graph: &RoadGraph, from: NodeId) -> DijkstraResult {
    shortest_path_tree(graph, from, None, |e| graph.edge(e).travel_time())
}

/// Number of local trips supporting the request — the support level that
/// route evaluation uses to judge whether LDR's answer is data-backed.
pub fn local_support(
    graph: &RoadGraph,
    trips: &[Trip],
    from: NodeId,
    to: NodeId,
    params: &LdrParams,
) -> usize {
    local_trips(graph, trips, from, to, params).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 31).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 31).unwrap();
        (city, ds)
    }

    #[test]
    fn replays_a_driven_route_when_the_expert_drove_it() {
        let (city, ds) = setup();
        let g = &city.graph;
        // Pick an OD pair that actually occurs in the dataset.
        let trip = &ds.trips[0];
        let (a, b) = (trip.path.source(), trip.path.destination());
        let ldr = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        assert_eq!(ldr.source(), a);
        assert_eq!(ldr.destination(), b);
        // The route must belong to a single driver's observed behaviour or
        // their habit-weighted search; when an exact trip exists for the
        // expert it must be replayed verbatim.
        let experts: std::collections::HashMap<cp_traj::DriverId, usize> = {
            let mut m = std::collections::HashMap::new();
            let fp = g.position(a);
            let tp = g.position(b);
            for t in &ds.trips {
                if g.position(t.path.source()).distance(&fp) <= 800.0
                    && g.position(t.path.destination()).distance(&tp) <= 800.0
                {
                    *m.entry(t.driver).or_insert(0) += 1;
                }
            }
            m
        };
        assert!(!experts.is_empty());
    }

    #[test]
    fn expert_exact_route_is_their_modal_one() {
        let (city, ds) = setup();
        let g = &city.graph;
        let trip = &ds.trips[0];
        let (a, b) = (trip.path.source(), trip.path.destination());
        let ldr = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        // If the returned path was driven by someone with this exact OD,
        // no other exact-OD path of that driver may be strictly more
        // frequent.
        if let Some(t0) = ds.trips.iter().find(|t| t.path == ldr) {
            let d = t0.driver;
            let count = |p: &Path| {
                ds.trips
                    .iter()
                    .filter(|t| t.driver == d && t.path == *p)
                    .count()
            };
            for t in ds
                .trips
                .iter()
                .filter(|t| t.driver == d && t.path.source() == a && t.path.destination() == b)
            {
                assert!(count(&ldr) >= count(&t.path));
            }
        }
    }

    #[test]
    fn fallback_routes_without_exact_trips() {
        let (city, ds) = setup();
        let g = &city.graph;
        // Find an OD pair with no exact trip.
        let mut pair = None;
        'outer: for a in 0..60u32 {
            for b in 0..60u32 {
                if a == b {
                    continue;
                }
                if !ds
                    .trips
                    .iter()
                    .any(|t| t.path.source() == NodeId(a) && t.path.destination() == NodeId(b))
                {
                    pair = Some((NodeId(a), NodeId(b)));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("some OD pair must be untripped");
        let p = local_driver_route(g, &ds.trips, a, b, &LdrParams::default()).unwrap();
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), b);
        assert!(p.is_simple());
    }

    #[test]
    fn fused_batch_matches_per_request_ldr() {
        let (city, ds) = setup();
        let g = &city.graph;
        let params = LdrParams::default();
        // Mix driven ODs (stage-2 replay), undriven pairs (stage 3/4),
        // duplicates and the degenerate same-node case.
        let t0 = &ds.trips[0];
        let from = t0.path.source();
        let mut tos: Vec<NodeId> = vec![t0.path.destination(), from];
        for b in [59u32, 7, 23, 41, 59] {
            if NodeId(b) != from {
                tos.push(NodeId(b));
            }
        }
        let fused = local_driver_routes(g, &ds.trips, from, &tos, &params);
        assert_eq!(fused.len(), tos.len());
        for (&to, got) in tos.iter().zip(&fused) {
            match local_driver_route(g, &ds.trips, from, to, &params) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want, "to {to:?}"),
                Err(_) => assert!(got.is_err(), "to {to:?}"),
            }
        }
        // Empty history: the shared fastest tree must match per-request
        // fastest fallbacks.
        let fused = local_driver_routes(g, &[], from, &tos, &params);
        for (&to, got) in tos.iter().zip(&fused) {
            match local_driver_route(g, &[], from, to, &params) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want, "to {to:?}"),
                Err(_) => assert!(got.is_err(), "to {to:?}"),
            }
        }
    }

    #[test]
    fn no_history_degenerates_to_fastest() {
        let (city, _) = setup();
        let g = &city.graph;
        let p = local_driver_route(g, &[], NodeId(0), NodeId(59), &LdrParams::default()).unwrap();
        let s = cp_roadnet::routing::dijkstra_path(
            g,
            NodeId(0),
            NodeId(59),
            cp_roadnet::routing::time_cost(g),
        )
        .unwrap();
        assert!((p.travel_time(g) - s.travel_time(g)).abs() < 1e-9);
    }

    #[test]
    fn support_counts_nearby_trips() {
        let (city, ds) = setup();
        let g = &city.graph;
        let trip = &ds.trips[0];
        let s = local_support(
            g,
            &ds.trips,
            trip.path.source(),
            trip.path.destination(),
            &LdrParams::default(),
        );
        assert!(s >= 1);
        let s0 = local_support(
            g,
            &ds.trips,
            trip.path.source(),
            trip.path.destination(),
            &LdrParams {
                endpoint_radius: 0.0,
                beta: 0.8,
            },
        );
        assert!(s0 <= s);
    }

    #[test]
    fn same_node_errors() {
        let (city, ds) = setup();
        assert!(local_driver_route(
            &city.graph,
            &ds.trips,
            NodeId(1),
            NodeId(1),
            &LdrParams::default()
        )
        .is_err());
    }
}
