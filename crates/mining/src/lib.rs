//! # cp-mining — popular-route mining and web-service simulation
//!
//! The candidate-route providers of CrowdPlanner's route-generation
//! component (paper §II-B1):
//!
//! * [`transfer`] — the trajectory-derived transfer network shared by the
//!   miners;
//! * [`mpr`] — Most Popular Route (Chen et al., ICDE 2011);
//! * [`mfp`] — time-period Most Frequent Path (Luo et al., SIGMOD 2013);
//! * [`ldr`] — Local-Driver Route (after Ceikute & Jensen, MDM 2013);
//! * [`webservice`] — simulated shortest/fastest map services;
//! * [`source`] — the unified candidate-set generator.

#![warn(missing_docs)]

pub mod ldr;
pub mod mfp;
pub mod mpr;
pub mod source;
pub mod transfer;
pub mod webservice;

pub use ldr::{local_driver_route, local_driver_routes, local_support, LdrParams};
pub use mfp::{
    best_bottleneck, frequency_discounted_tree, most_frequent_path, most_frequent_path_on,
    most_frequent_paths, most_frequent_paths_on, MfpParams,
};
pub use mpr::{
    log_popularity, most_popular_route, most_popular_routes, popularity_tree, MprParams,
};
pub use source::{
    candidates_from_artifacts, distinct_candidates, generate_candidates, generate_candidates_batch,
    generate_candidates_multi, CandidateGenerator, CandidateRoute, OriginArtifacts, SourceKind,
};
pub use transfer::TransferNetwork;
pub use webservice::{FastestRouteService, ShortestRouteService};
