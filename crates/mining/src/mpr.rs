//! MPR — Most Popular Route (Chen, Shen, Zhou; ICDE 2011; paper ref \[4\]).
//!
//! The original algorithm builds a transfer network from trajectories,
//! derives a popularity indicator per road segment from transfer
//! probabilities, and searches the route maximising the product of
//! popularity scores (which also biases toward routes with fewer vertices —
//! every extra factor < 1 lowers the product). We reproduce that: the MPR
//! is the path minimising `Σ -ln P(e)` where `P(e)` is the Laplace-smoothed
//! transfer probability, computed with Dijkstra (all costs positive because
//! `P(e) < 1` whenever a node has more than one outgoing edge).

use crate::transfer::TransferNetwork;
use cp_roadnet::routing::{
    dijkstra_path, shortest_path_tree, shortest_path_tree_to_all, DijkstraResult,
};
use cp_roadnet::{NodeId, Path, RoadGraph, RoadNetError};

/// Parameters of the MPR search.
#[derive(Debug, Clone, Copy)]
pub struct MprParams {
    /// Laplace smoothing pseudo-count for unseen edges.
    pub smoothing: f64,
}

impl Default for MprParams {
    fn default() -> Self {
        MprParams { smoothing: 0.3 }
    }
}

/// Computes the most popular route from `from` to `to`.
pub fn most_popular_route(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    to: NodeId,
    params: &MprParams,
) -> Result<Path, RoadNetError> {
    let cost = |e| {
        let p = tn
            .transfer_probability(graph, e, params.smoothing)
            .max(f64::MIN_POSITIVE);
        // -ln p ≥ 0 because p ≤ 1.
        -p.ln()
    };
    dijkstra_path(graph, from, to, cost)
}

/// Computes the most popular routes from one origin to many
/// destinations with a **single** popularity expansion.
///
/// The per-request [`most_popular_route`] pays one full Dijkstra over
/// the `-ln P(e)` popularity costs per call even though the costs are a
/// pure function of the source side; when many concurrent requests
/// leave the same origin, that work is identical. This fused form runs
/// one [`shortest_path_tree_to_all`] expansion and splits per
/// destination, returning results byte-identical to calling
/// [`most_popular_route`] per pair (the single-target search is a
/// prefix of the multi-target one).
pub fn most_popular_routes(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    tos: &[NodeId],
    params: &MprParams,
) -> Vec<Result<Path, RoadNetError>> {
    let cost = |e| {
        let p = tn
            .transfer_probability(graph, e, params.smoothing)
            .max(f64::MIN_POSITIVE);
        -p.ln()
    };
    let targets: Vec<NodeId> = tos.iter().copied().filter(|&t| t != from).collect();
    let tree = shortest_path_tree_to_all(graph, from, &targets, cost);
    tos.iter()
        .map(|&to| {
            if to == from {
                return Err(RoadNetError::NoPath { from, to });
            }
            tree.path_to(graph, to)
                .ok_or(RoadNetError::NoPath { from, to })
        })
        .collect()
}

/// Expands the **full** popularity tree from `from`: the all-day,
/// destination-set-independent MPR artifact behind cross-bucket and
/// cross-batch mining reuse. `-ln P(e)` depends only on the origin side
/// and the all-day transfer network, so one exhaustive expansion
/// answers *any* later destination; `DijkstraResult::path_to` on the
/// returned tree is byte-identical to [`most_popular_route`] for every
/// reachable target (the single-target search is a settle-order prefix
/// of the exhaustive one).
pub fn popularity_tree(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    from: NodeId,
    params: &MprParams,
) -> DijkstraResult {
    let cost = |e| {
        let p = tn
            .transfer_probability(graph, e, params.smoothing)
            .max(f64::MIN_POSITIVE);
        -p.ln()
    };
    shortest_path_tree(graph, from, None, cost)
}

/// Popularity score of a path: the product of its transfer probabilities,
/// reported as a log-popularity (sums are numerically safer than products).
pub fn log_popularity(
    graph: &RoadGraph,
    tn: &TransferNetwork,
    path: &Path,
    params: &MprParams,
) -> f64 {
    path.edges()
        .iter()
        .map(|&e| {
            tn.transfer_probability(graph, e, params.smoothing)
                .max(f64::MIN_POSITIVE)
                .ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, DriverPreference, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset, TransferNetwork) {
        let city = generate_city(&CityParams::small(), 23).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 23).unwrap();
        let tn = TransferNetwork::build(&city.graph, &ds.trips, None);
        (city, ds, tn)
    }

    #[test]
    fn mpr_exists_between_any_pair() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        for (a, b) in [(0u32, 59u32), (9, 50), (13, 37)] {
            let p =
                most_popular_route(g, &tn, NodeId(a), NodeId(b), &MprParams::default()).unwrap();
            assert_eq!(p.source(), NodeId(a));
            assert_eq!(p.destination(), NodeId(b));
            assert!(p.is_simple());
        }
    }

    #[test]
    fn mpr_maximises_log_popularity_among_alternatives() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MprParams::default();
        let mpr = most_popular_route(g, &tn, NodeId(0), NodeId(59), &params).unwrap();
        let mpr_pop = log_popularity(g, &tn, &mpr, &params);
        // Compare against the shortest and fastest paths: MPR must be at
        // least as popular (its optimisation target).
        let alt1 = cp_roadnet::routing::dijkstra_path(
            g,
            NodeId(0),
            NodeId(59),
            cp_roadnet::routing::distance_cost(g),
        )
        .unwrap();
        let alt2 = cp_roadnet::routing::dijkstra_path(
            g,
            NodeId(0),
            NodeId(59),
            cp_roadnet::routing::time_cost(g),
        )
        .unwrap();
        assert!(mpr_pop >= log_popularity(g, &tn, &alt1, &params) - 1e-9);
        assert!(mpr_pop >= log_popularity(g, &tn, &alt2, &params) - 1e-9);
    }

    #[test]
    fn with_rich_data_mpr_tracks_consensus_edges() {
        // Where lots of commuters drive, the MPR between two hotspot-ish
        // nodes should reuse heavily-driven edges much more than a random
        // route would: check its average edge frequency beats the shortest
        // path's.
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MprParams::default();
        let consensus = DriverPreference::consensus();
        let mut mpr_better = 0;
        let mut total = 0;
        for (a, b) in [(0u32, 59u32), (5, 54), (20, 39), (10, 49), (3, 56)] {
            let mpr = most_popular_route(g, &tn, NodeId(a), NodeId(b), &params).unwrap();
            let cons = consensus.preferred_route(g, NodeId(a), NodeId(b)).unwrap();
            let avg = |p: &Path| {
                p.edges().iter().map(|&e| tn.edge_frequency(e)).sum::<f64>() / p.len() as f64
            };
            total += 1;
            // MPR's support should be in the same league as the consensus
            // route's support (both follow the crowd).
            if avg(&mpr) >= 0.5 * avg(&cons) {
                mpr_better += 1;
            }
        }
        assert!(mpr_better >= total - 1, "{mpr_better}/{total}");
    }

    #[test]
    fn fused_batch_matches_per_request_mpr() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MprParams::default();
        let from = NodeId(3);
        let tos: Vec<NodeId> = [59u32, 17, 3, 44, 59, 8].map(NodeId).to_vec();
        let fused = most_popular_routes(g, &tn, from, &tos, &params);
        assert_eq!(fused.len(), tos.len());
        for (&to, got) in tos.iter().zip(&fused) {
            match most_popular_route(g, &tn, from, to, &params) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want, "to {to:?}"),
                Err(_) => assert!(got.is_err(), "to {to:?}"),
            }
        }
    }

    #[test]
    fn popularity_tree_matches_per_request_mpr() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MprParams::default();
        let from = NodeId(3);
        let tree = popularity_tree(g, &tn, from, &params);
        for b in [59u32, 17, 44, 8, 0] {
            let want = most_popular_route(g, &tn, from, NodeId(b), &params).unwrap();
            let got = tree.path_to(g, NodeId(b)).expect("reachable");
            assert_eq!(got, want, "to {b}");
        }
    }

    #[test]
    fn no_data_falls_back_to_plausible_route() {
        let (city, _, _) = setup();
        let g = &city.graph;
        let empty = TransferNetwork::build(g, &[], None);
        // With uniform smoothing the MPR degenerates to a min-hop-ish route,
        // but must still exist and be simple.
        let p =
            most_popular_route(g, &empty, NodeId(0), NodeId(59), &MprParams::default()).unwrap();
        assert!(p.is_simple());
    }

    #[test]
    fn log_popularity_is_nonpositive() {
        let (city, _, tn) = setup();
        let g = &city.graph;
        let params = MprParams::default();
        let p = most_popular_route(g, &tn, NodeId(0), NodeId(30), &params).unwrap();
        assert!(log_popularity(g, &tn, &p, &params) <= 0.0);
    }
}
