//! Transfer network built from historical trips.
//!
//! The transfer network (Chen et al., "Discovering popular routes from
//! trajectories", ICDE 2011 — the paper's MPR citation \[4\]) summarises a
//! trajectory dataset as per-edge traversal counts and per-node transfer
//! probabilities. Both MPR and MFP consume it; MFP additionally filters
//! trips by departure-time period (Luo et al., SIGMOD 2013).

use cp_roadnet::{EdgeId, NodeId, RoadGraph};
use cp_traj::{TimeOfDay, Trip};

/// Per-edge traversal statistics of a trip set.
#[derive(Debug, Clone)]
pub struct TransferNetwork {
    /// Traversal count per edge (indexed by `EdgeId`).
    edge_count: Vec<f64>,
    /// Total outgoing traversals per node.
    node_out: Vec<f64>,
    /// Number of trips aggregated.
    trips: usize,
}

impl TransferNetwork {
    /// Builds the network from all `trips`. When `period` is given as
    /// `(center, half_width_seconds)`, only trips departing within the
    /// circular time window are counted — this is MFP's time-period
    /// restriction.
    pub fn build(
        graph: &RoadGraph,
        trips: &[Trip],
        period: Option<(TimeOfDay, f64)>,
    ) -> TransferNetwork {
        let mut edge_count = vec![0.0; graph.edge_count()];
        let mut node_out = vec![0.0; graph.node_count()];
        let mut used = 0usize;
        for trip in trips {
            if let Some((center, half_width)) = period {
                if trip.departure.circular_distance(center) > half_width {
                    continue;
                }
            }
            used += 1;
            for &e in trip.path.edges() {
                edge_count[e.index()] += 1.0;
                node_out[graph.edge(e).from.index()] += 1.0;
            }
        }
        TransferNetwork {
            edge_count,
            node_out,
            trips: used,
        }
    }

    /// Number of trips aggregated into this network.
    pub fn trip_count(&self) -> usize {
        self.trips
    }

    /// Raw traversal count of an edge.
    #[inline]
    pub fn edge_frequency(&self, e: EdgeId) -> f64 {
        self.edge_count[e.index()]
    }

    /// Total traversals leaving `n`.
    #[inline]
    pub fn node_out_frequency(&self, n: NodeId) -> f64 {
        self.node_out[n.index()]
    }

    /// Laplace-smoothed transfer probability of taking edge `e` when
    /// standing at its tail, given the historical data. `smoothing` is the
    /// pseudo-count added to every outgoing edge so unseen edges keep a
    /// small positive probability (routes must exist even through
    /// data-sparse areas — the paper's §I criticism of popularity-only
    /// systems).
    pub fn transfer_probability(&self, graph: &RoadGraph, e: EdgeId, smoothing: f64) -> f64 {
        let edge = graph.edge(e);
        let out_deg = graph.out_edges(edge.from).len() as f64;
        let num = self.edge_count[e.index()] + smoothing;
        let den = self.node_out[edge.from.index()] + smoothing * out_deg;
        if den <= 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Mean traversal count over edges with at least one traversal.
    /// Used as the half-saturation constant of frequency discounts.
    pub fn mean_positive_frequency(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for &c in &self.edge_count {
            if c > 0.0 {
                sum += c;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of edges never traversed — a data-sparsity diagnostic used
    /// by experiment E1.
    pub fn sparsity(&self) -> f64 {
        if self.edge_count.is_empty() {
            return 1.0;
        }
        let unseen = self.edge_count.iter().filter(|&&c| c == 0.0).count();
        unseen as f64 / self.edge_count.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 17).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 17).unwrap();
        (city, ds)
    }

    #[test]
    fn counts_match_trips() {
        let (city, ds) = setup();
        let tn = TransferNetwork::build(&city.graph, &ds.trips, None);
        assert_eq!(tn.trip_count(), ds.trips.len());
        let total_edge_traversals: f64 = city.graph.edge_ids().map(|e| tn.edge_frequency(e)).sum();
        let expect: usize = ds.trips.iter().map(|t| t.path.len()).sum();
        assert_eq!(total_edge_traversals as usize, expect);
    }

    #[test]
    fn node_out_is_sum_of_outgoing_edge_counts() {
        let (city, ds) = setup();
        let g = &city.graph;
        let tn = TransferNetwork::build(g, &ds.trips, None);
        for n in g.nodes() {
            let sum: f64 = g.out_edges(n).iter().map(|&e| tn.edge_frequency(e)).sum();
            assert!((sum - tn.node_out_frequency(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn transfer_probabilities_sum_to_one_with_smoothing() {
        let (city, ds) = setup();
        let g = &city.graph;
        let tn = TransferNetwork::build(g, &ds.trips, None);
        for n in g.nodes().take(20) {
            if g.out_edges(n).is_empty() {
                continue;
            }
            let sum: f64 = g
                .out_edges(n)
                .iter()
                .map(|&e| tn.transfer_probability(g, e, 0.5))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "node {n:?} sums to {sum}");
        }
    }

    #[test]
    fn period_filter_reduces_counts() {
        let (city, ds) = setup();
        let g = &city.graph;
        let all = TransferNetwork::build(g, &ds.trips, None);
        let morning =
            TransferNetwork::build(g, &ds.trips, Some((TimeOfDay::from_hours(8.0), 3600.0)));
        assert!(morning.trip_count() < all.trip_count());
        assert!(morning.trip_count() > 0, "morning peak must contain trips");
        for e in g.edge_ids() {
            assert!(morning.edge_frequency(e) <= all.edge_frequency(e));
        }
    }

    #[test]
    fn sparsity_between_zero_and_one() {
        let (city, ds) = setup();
        let tn = TransferNetwork::build(&city.graph, &ds.trips, None);
        let s = tn.sparsity();
        assert!((0.0..=1.0).contains(&s));
        // With 2000 trips on a 60-node city, popular edges exist.
        assert!(s < 1.0);
    }

    #[test]
    fn empty_trips_are_fully_sparse() {
        let (city, _) = setup();
        let tn = TransferNetwork::build(&city.graph, &[], None);
        assert_eq!(tn.trip_count(), 0);
        assert_eq!(tn.sparsity(), 1.0);
        // Smoothed probabilities remain a valid distribution.
        let g = &city.graph;
        let n = cp_roadnet::NodeId(0);
        let sum: f64 = g
            .out_edges(n)
            .iter()
            .map(|&e| tn.transfer_probability(g, e, 1.0))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
