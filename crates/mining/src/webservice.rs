//! Simulated web map services.
//!
//! The paper sources candidate routes from "web services such as Google
//! Map" and compares against them. The only property the system depends on
//! is that a service returns a distance- or time-optimal route as a black
//! box, so the simulation is exactly that: A*-computed shortest-distance
//! and fastest-time providers (see DESIGN.md substitution table).

use cp_roadnet::routing::astar_path;
use cp_roadnet::{NodeId, Path, RoadClass, RoadGraph, RoadNetError};

/// A web service returning the shortest-distance route (à la a
/// distance-optimising navigation provider).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestRouteService;

impl ShortestRouteService {
    /// Routes the request.
    pub fn route(&self, graph: &RoadGraph, from: NodeId, to: NodeId) -> Result<Path, RoadNetError> {
        astar_path(graph, from, to, |e| graph.edge(e).length, 1.0)
    }

    /// Routes one origin to many destinations (the batched form a real
    /// navigation API exposes as a distance-matrix/multi-stop call).
    /// Each destination runs the same goal-directed search as
    /// [`ShortestRouteService::route`] — A* shares no cross-target state,
    /// and substituting a blind single-source expansion could break
    /// equal-cost tie-breaks — so the results are byte-identical to the
    /// per-request calls; the batched form exists so fused candidate
    /// generation issues one provider call per origin group.
    pub fn route_many(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        tos: &[NodeId],
    ) -> Vec<Result<Path, RoadNetError>> {
        tos.iter().map(|&to| self.route(graph, from, to)).collect()
    }
}

/// A web service returning the fastest free-flow route (à la a
/// time-optimising navigation provider).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestRouteService;

impl FastestRouteService {
    /// Routes the request.
    pub fn route(&self, graph: &RoadGraph, from: NodeId, to: NodeId) -> Result<Path, RoadNetError> {
        astar_path(
            graph,
            from,
            to,
            |e| graph.edge(e).travel_time(),
            RoadClass::Highway.speed_mps(),
        )
    }

    /// Routes one origin to many destinations; see
    /// [`ShortestRouteService::route_many`] for why each destination
    /// keeps its own goal-directed search.
    pub fn route_many(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        tos: &[NodeId],
    ) -> Vec<Result<Path, RoadNetError>> {
        tos.iter().map(|&to| self.route(graph, from, to)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost, time_cost};
    use cp_roadnet::{generate_city, CityParams};

    #[test]
    fn shortest_service_is_distance_optimal() {
        let city = generate_city(&CityParams::small(), 37).unwrap();
        let g = &city.graph;
        let svc = ShortestRouteService;
        for (a, b) in [(0u32, 59u32), (11, 48)] {
            let p = svc.route(g, NodeId(a), NodeId(b)).unwrap();
            let opt = dijkstra_path(g, NodeId(a), NodeId(b), distance_cost(g)).unwrap();
            assert!((p.length(g) - opt.length(g)).abs() < 1e-6);
        }
    }

    #[test]
    fn fastest_service_is_time_optimal() {
        let city = generate_city(&CityParams::small(), 37).unwrap();
        let g = &city.graph;
        let svc = FastestRouteService;
        for (a, b) in [(0u32, 59u32), (7, 52)] {
            let p = svc.route(g, NodeId(a), NodeId(b)).unwrap();
            let opt = dijkstra_path(g, NodeId(a), NodeId(b), time_cost(g)).unwrap();
            assert!((p.travel_time(g) - opt.travel_time(g)).abs() < 1e-6);
        }
    }

    #[test]
    fn services_disagree_somewhere() {
        let city = generate_city(&CityParams::medium(), 37).unwrap();
        let g = &city.graph;
        let sh = ShortestRouteService;
        let fa = FastestRouteService;
        let mut diff = 0;
        for a in (0..400u32).step_by(97) {
            for b in (0..400u32).step_by(89) {
                if a == b {
                    continue;
                }
                if sh.route(g, NodeId(a), NodeId(b)).unwrap()
                    != fa.route(g, NodeId(a), NodeId(b)).unwrap()
                {
                    diff += 1;
                }
            }
        }
        assert!(diff > 0, "shortest and fastest never differed");
    }
}
