//! Unified candidate-route generation (paper §II-B1, "route generation
//! component": "two types of candidate routes, the one provided by web
//! services … and the one generated from historical trajectories by using
//! popular route mining algorithms, i.e., MPR, LDR and MFP").

use crate::ldr::{local_driver_route, local_driver_routes, local_support, LdrParams};
use crate::mfp::{most_frequent_path, most_frequent_paths_on, MfpParams};
use crate::mpr::{most_popular_route, most_popular_routes, MprParams};
use crate::transfer::TransferNetwork;
use crate::webservice::{FastestRouteService, ShortestRouteService};
use cp_roadnet::{NodeId, Path, RoadGraph};
use cp_traj::{TimeOfDay, Trip};

/// Where a candidate route came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Distance-optimising web service.
    ShortestWebService,
    /// Time-optimising web service.
    FastestWebService,
    /// Most Popular Route miner.
    Mpr,
    /// Local-Driver Route miner.
    Ldr,
    /// Most Frequent Path miner.
    Mfp,
}

impl SourceKind {
    /// All sources in presentation order.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::ShortestWebService,
        SourceKind::FastestWebService,
        SourceKind::Mpr,
        SourceKind::Ldr,
        SourceKind::Mfp,
    ];

    /// Human-readable name, used by the experiment harness tables.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::ShortestWebService => "WS-Shortest",
            SourceKind::FastestWebService => "WS-Fastest",
            SourceKind::Mpr => "MPR",
            SourceKind::Ldr => "LDR",
            SourceKind::Mfp => "MFP",
        }
    }
}

/// A candidate route and its provenance.
#[derive(Debug, Clone)]
pub struct CandidateRoute {
    /// Which provider produced it.
    pub source: SourceKind,
    /// The route.
    pub path: Path,
}

/// Generates the full candidate set for route requests, holding the
/// pre-built all-day transfer network so repeated requests are cheap.
pub struct CandidateGenerator<'a> {
    graph: &'a RoadGraph,
    trips: &'a [Trip],
    transfer: TransferNetwork,
    /// MPR parameters.
    pub mpr: MprParams,
    /// MFP parameters.
    pub mfp: MfpParams,
    /// LDR parameters.
    pub ldr: LdrParams,
}

impl<'a> CandidateGenerator<'a> {
    /// Builds the generator (aggregates the transfer network once).
    pub fn new(graph: &'a RoadGraph, trips: &'a [Trip]) -> Self {
        CandidateGenerator {
            graph,
            trips,
            transfer: TransferNetwork::build(graph, trips, None),
            mpr: MprParams::default(),
            mfp: MfpParams::default(),
            ldr: LdrParams::default(),
        }
    }

    /// The underlying all-day transfer network.
    pub fn transfer_network(&self) -> &TransferNetwork {
        &self.transfer
    }

    /// Historical-trip support near this OD pair (how much data backs the
    /// miners here) — consumed by route evaluation.
    pub fn od_support(&self, from: NodeId, to: NodeId) -> usize {
        local_support(self.graph, self.trips, from, to, &self.ldr)
    }

    /// Produces one candidate per available source. Sources that cannot
    /// route the request (disconnected etc.) are silently skipped; the
    /// result is empty only if no source can connect the pair.
    pub fn candidates(
        &self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Vec<CandidateRoute> {
        generate_candidates(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            from,
            to,
            departure,
        )
    }

    /// Produces candidate sets for a whole group of OD queries sharing a
    /// departure time with one fused mining pass — see
    /// [`generate_candidates_batch`]. Per query, byte-identical to
    /// [`CandidateGenerator::candidates`].
    pub fn candidates_batch(
        &self,
        queries: &[(NodeId, NodeId)],
        departure: TimeOfDay,
    ) -> Vec<Vec<CandidateRoute>> {
        generate_candidates_batch(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            queries,
            departure,
        )
    }
}

/// Produces one candidate per available source from explicitly supplied
/// world parts — the ownership-free core behind
/// [`CandidateGenerator::candidates`], usable by callers that hold the
/// graph and trips behind shared pointers instead of borrows (the
/// serving layer's owned worlds). Sources that cannot route the request
/// are silently skipped; the result is empty only if no source can
/// connect the pair.
pub fn generate_candidates(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    from: NodeId,
    to: NodeId,
    departure: TimeOfDay,
) -> Vec<CandidateRoute> {
    let mut out = Vec::with_capacity(SourceKind::ALL.len());
    if let Ok(p) = ShortestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::ShortestWebService,
            path: p,
        });
    }
    if let Ok(p) = FastestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::FastestWebService,
            path: p,
        });
    }
    if let Ok(p) = most_popular_route(graph, transfer, from, to, mpr) {
        out.push(CandidateRoute {
            source: SourceKind::Mpr,
            path: p,
        });
    }
    if let Ok(p) = local_driver_route(graph, trips, from, to, ldr) {
        out.push(CandidateRoute {
            source: SourceKind::Ldr,
            path: p,
        });
    }
    if let Ok(p) = most_frequent_path(graph, trips, from, to, departure, mfp) {
        out.push(CandidateRoute {
            source: SourceKind::Mfp,
            path: p,
        });
    }
    out
}

/// Produces candidate sets for a batch of OD queries sharing a
/// departure time, fusing the expensive single-source work across
/// queries with a common origin:
///
/// * **MFP** — the O(|trips|) period filter and footmark aggregation
///   (the dominant per-request cost) run **once for the whole batch**,
///   since they depend only on the departure; each origin then runs one
///   multi-target frequency-discounted expansion;
/// * **MPR** — one popularity expansion per distinct origin instead of
///   one per query;
/// * **LDR** — one origin-side locality scan per origin, with stage-3
///   habit searches and stage-4 fastest fallbacks memoised per expert;
/// * **web services** — one shortest and one fastest provider call per
///   origin group (multi-destination form).
///
/// `out[i]` is byte-identical to
/// `generate_candidates(graph, trips, transfer, mpr, mfp, ldr,
/// queries[i].0, queries[i].1, departure)` — same sources, same paths,
/// same order — so the serving layer can swap between the per-request
/// and fused paths freely. Queries need not share an origin; fusion
/// simply degrades gracefully (a batch of distinct origins still shares
/// the MFP aggregation).
pub fn generate_candidates_batch(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    queries: &[(NodeId, NodeId)],
    departure: TimeOfDay,
) -> Vec<Vec<CandidateRoute>> {
    // One period transfer network for every query in the batch (this is
    // what `most_frequent_path` rebuilds per request).
    let period_tn = TransferNetwork::build(graph, trips, Some((departure, mfp.period_half_width)));

    // Group query indices by origin, preserving first-appearance order.
    let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
    for (i, &(from, _)) in queries.iter().enumerate() {
        match groups.iter_mut().find(|(f, _)| *f == from) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((from, vec![i])),
        }
    }

    let mut out: Vec<Vec<CandidateRoute>> = queries.iter().map(|_| Vec::new()).collect();
    for (from, idxs) in groups {
        let tos: Vec<NodeId> = idxs.iter().map(|&i| queries[i].1).collect();
        let shortest = ShortestRouteService.route_many(graph, from, &tos);
        let fastest = FastestRouteService.route_many(graph, from, &tos);
        let mprs = most_popular_routes(graph, transfer, from, &tos, mpr);
        let ldrs = local_driver_routes(graph, trips, from, &tos, ldr);
        let mfps = most_frequent_paths_on(graph, &period_tn, from, &tos, mfp);
        for (k, &i) in idxs.iter().enumerate() {
            // Assembly order must match `generate_candidates` exactly.
            let mut set = Vec::with_capacity(SourceKind::ALL.len());
            let sources = [
                (SourceKind::ShortestWebService, &shortest[k]),
                (SourceKind::FastestWebService, &fastest[k]),
                (SourceKind::Mpr, &mprs[k]),
                (SourceKind::Ldr, &ldrs[k]),
                (SourceKind::Mfp, &mfps[k]),
            ];
            for (source, result) in sources {
                if let Ok(path) = result {
                    set.push(CandidateRoute {
                        source,
                        path: path.clone(),
                    });
                }
            }
            out[i] = set;
        }
    }
    out
}

/// Deduplicates candidates into distinct paths, remembering every source
/// that proposed each path. Order follows first appearance.
pub fn distinct_candidates(candidates: &[CandidateRoute]) -> Vec<(Path, Vec<SourceKind>)> {
    let mut out: Vec<(Path, Vec<SourceKind>)> = Vec::new();
    for c in candidates {
        if let Some(entry) = out.iter_mut().find(|(p, _)| *p == c.path) {
            entry.1.push(c.source);
        } else {
            out.push((c.path.clone(), vec![c.source]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 41).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 41).unwrap();
        (city, ds)
    }

    #[test]
    fn produces_all_five_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        assert_eq!(cs.len(), 5);
        let kinds: Vec<SourceKind> = cs.iter().map(|c| c.source).collect();
        for k in SourceKind::ALL {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
        for c in &cs {
            assert_eq!(c.path.source(), NodeId(0));
            assert_eq!(c.path.destination(), NodeId(59));
        }
    }

    #[test]
    fn distinct_candidates_merges_agreeing_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let distinct = distinct_candidates(&cs);
        assert!(!distinct.is_empty());
        assert!(distinct.len() <= cs.len());
        let total: usize = distinct.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, cs.len(), "every source accounted for exactly once");
        // No duplicate paths remain.
        for i in 0..distinct.len() {
            for j in i + 1..distinct.len() {
                assert_ne!(distinct[i].0, distinct[j].0);
            }
        }
    }

    #[test]
    fn fused_batch_matches_per_request_candidates() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let dep = TimeOfDay::from_hours(8.0);
        // Shared-origin group + a second origin + duplicates + a
        // degenerate same-node query.
        let queries: Vec<(NodeId, NodeId)> = vec![
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(31)),
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(0)),
            (NodeId(12), NodeId(47)),
            (NodeId(0), NodeId(7)),
        ];
        let fused = gen.candidates_batch(&queries, dep);
        assert_eq!(fused.len(), queries.len());
        for (q, (&(from, to), got)) in queries.iter().zip(&fused).enumerate() {
            let want = gen.candidates(from, to, dep);
            assert_eq!(got.len(), want.len(), "query {q}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source, "query {q}");
                assert_eq!(x.path, y.path, "query {q}");
            }
        }
        // The same-node query yields no candidates on either path.
        assert!(fused[3].is_empty());
    }

    #[test]
    fn od_support_is_monotone_in_radius() {
        let (city, ds) = setup();
        let mut gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let narrow = {
            gen.ldr.endpoint_radius = 100.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        let wide = {
            gen.ldr.endpoint_radius = 2000.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        assert!(wide >= narrow);
    }

    #[test]
    fn source_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            SourceKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SourceKind::ALL.len());
    }
}
