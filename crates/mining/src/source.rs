//! Unified candidate-route generation (paper §II-B1, "route generation
//! component": "two types of candidate routes, the one provided by web
//! services … and the one generated from historical trajectories by using
//! popular route mining algorithms, i.e., MPR, LDR and MFP").

use crate::ldr::{local_driver_route, local_support, LdrParams};
use crate::mfp::{most_frequent_path, MfpParams};
use crate::mpr::{most_popular_route, MprParams};
use crate::transfer::TransferNetwork;
use crate::webservice::{FastestRouteService, ShortestRouteService};
use cp_roadnet::{NodeId, Path, RoadGraph};
use cp_traj::{TimeOfDay, Trip};

/// Where a candidate route came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Distance-optimising web service.
    ShortestWebService,
    /// Time-optimising web service.
    FastestWebService,
    /// Most Popular Route miner.
    Mpr,
    /// Local-Driver Route miner.
    Ldr,
    /// Most Frequent Path miner.
    Mfp,
}

impl SourceKind {
    /// All sources in presentation order.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::ShortestWebService,
        SourceKind::FastestWebService,
        SourceKind::Mpr,
        SourceKind::Ldr,
        SourceKind::Mfp,
    ];

    /// Human-readable name, used by the experiment harness tables.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::ShortestWebService => "WS-Shortest",
            SourceKind::FastestWebService => "WS-Fastest",
            SourceKind::Mpr => "MPR",
            SourceKind::Ldr => "LDR",
            SourceKind::Mfp => "MFP",
        }
    }
}

/// A candidate route and its provenance.
#[derive(Debug, Clone)]
pub struct CandidateRoute {
    /// Which provider produced it.
    pub source: SourceKind,
    /// The route.
    pub path: Path,
}

/// Generates the full candidate set for route requests, holding the
/// pre-built all-day transfer network so repeated requests are cheap.
pub struct CandidateGenerator<'a> {
    graph: &'a RoadGraph,
    trips: &'a [Trip],
    transfer: TransferNetwork,
    /// MPR parameters.
    pub mpr: MprParams,
    /// MFP parameters.
    pub mfp: MfpParams,
    /// LDR parameters.
    pub ldr: LdrParams,
}

impl<'a> CandidateGenerator<'a> {
    /// Builds the generator (aggregates the transfer network once).
    pub fn new(graph: &'a RoadGraph, trips: &'a [Trip]) -> Self {
        CandidateGenerator {
            graph,
            trips,
            transfer: TransferNetwork::build(graph, trips, None),
            mpr: MprParams::default(),
            mfp: MfpParams::default(),
            ldr: LdrParams::default(),
        }
    }

    /// The underlying all-day transfer network.
    pub fn transfer_network(&self) -> &TransferNetwork {
        &self.transfer
    }

    /// Historical-trip support near this OD pair (how much data backs the
    /// miners here) — consumed by route evaluation.
    pub fn od_support(&self, from: NodeId, to: NodeId) -> usize {
        local_support(self.graph, self.trips, from, to, &self.ldr)
    }

    /// Produces one candidate per available source. Sources that cannot
    /// route the request (disconnected etc.) are silently skipped; the
    /// result is empty only if no source can connect the pair.
    pub fn candidates(
        &self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Vec<CandidateRoute> {
        generate_candidates(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            from,
            to,
            departure,
        )
    }
}

/// Produces one candidate per available source from explicitly supplied
/// world parts — the ownership-free core behind
/// [`CandidateGenerator::candidates`], usable by callers that hold the
/// graph and trips behind shared pointers instead of borrows (the
/// serving layer's owned worlds). Sources that cannot route the request
/// are silently skipped; the result is empty only if no source can
/// connect the pair.
pub fn generate_candidates(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    from: NodeId,
    to: NodeId,
    departure: TimeOfDay,
) -> Vec<CandidateRoute> {
    let mut out = Vec::with_capacity(SourceKind::ALL.len());
    if let Ok(p) = ShortestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::ShortestWebService,
            path: p,
        });
    }
    if let Ok(p) = FastestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::FastestWebService,
            path: p,
        });
    }
    if let Ok(p) = most_popular_route(graph, transfer, from, to, mpr) {
        out.push(CandidateRoute {
            source: SourceKind::Mpr,
            path: p,
        });
    }
    if let Ok(p) = local_driver_route(graph, trips, from, to, ldr) {
        out.push(CandidateRoute {
            source: SourceKind::Ldr,
            path: p,
        });
    }
    if let Ok(p) = most_frequent_path(graph, trips, from, to, departure, mfp) {
        out.push(CandidateRoute {
            source: SourceKind::Mfp,
            path: p,
        });
    }
    out
}

/// Deduplicates candidates into distinct paths, remembering every source
/// that proposed each path. Order follows first appearance.
pub fn distinct_candidates(candidates: &[CandidateRoute]) -> Vec<(Path, Vec<SourceKind>)> {
    let mut out: Vec<(Path, Vec<SourceKind>)> = Vec::new();
    for c in candidates {
        if let Some(entry) = out.iter_mut().find(|(p, _)| *p == c.path) {
            entry.1.push(c.source);
        } else {
            out.push((c.path.clone(), vec![c.source]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 41).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 41).unwrap();
        (city, ds)
    }

    #[test]
    fn produces_all_five_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        assert_eq!(cs.len(), 5);
        let kinds: Vec<SourceKind> = cs.iter().map(|c| c.source).collect();
        for k in SourceKind::ALL {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
        for c in &cs {
            assert_eq!(c.path.source(), NodeId(0));
            assert_eq!(c.path.destination(), NodeId(59));
        }
    }

    #[test]
    fn distinct_candidates_merges_agreeing_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let distinct = distinct_candidates(&cs);
        assert!(!distinct.is_empty());
        assert!(distinct.len() <= cs.len());
        let total: usize = distinct.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, cs.len(), "every source accounted for exactly once");
        // No duplicate paths remain.
        for i in 0..distinct.len() {
            for j in i + 1..distinct.len() {
                assert_ne!(distinct[i].0, distinct[j].0);
            }
        }
    }

    #[test]
    fn od_support_is_monotone_in_radius() {
        let (city, ds) = setup();
        let mut gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let narrow = {
            gen.ldr.endpoint_radius = 100.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        let wide = {
            gen.ldr.endpoint_radius = 2000.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        assert!(wide >= narrow);
    }

    #[test]
    fn source_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            SourceKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SourceKind::ALL.len());
    }
}
