//! Unified candidate-route generation (paper §II-B1, "route generation
//! component": "two types of candidate routes, the one provided by web
//! services … and the one generated from historical trajectories by using
//! popular route mining algorithms, i.e., MPR, LDR and MFP").

use crate::ldr::{
    expert_habit_tree, expert_modal_exact, fastest_fallback_tree, local_driver_route,
    local_support, origin_local_indices, pick_expert, LdrParams,
};
use crate::mfp::{frequency_discounted_tree, most_frequent_path, MfpParams};
use crate::mpr::{most_popular_route, popularity_tree, MprParams};
use crate::transfer::TransferNetwork;
use crate::webservice::{FastestRouteService, ShortestRouteService};
use cp_roadnet::routing::DijkstraResult;
use cp_roadnet::{NodeId, Path, RoadGraph, RoadNetError};
use cp_traj::{DriverId, TimeOfDay, Trip};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Where a candidate route came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Distance-optimising web service.
    ShortestWebService,
    /// Time-optimising web service.
    FastestWebService,
    /// Most Popular Route miner.
    Mpr,
    /// Local-Driver Route miner.
    Ldr,
    /// Most Frequent Path miner.
    Mfp,
}

impl SourceKind {
    /// All sources in presentation order.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::ShortestWebService,
        SourceKind::FastestWebService,
        SourceKind::Mpr,
        SourceKind::Ldr,
        SourceKind::Mfp,
    ];

    /// Human-readable name, used by the experiment harness tables.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::ShortestWebService => "WS-Shortest",
            SourceKind::FastestWebService => "WS-Fastest",
            SourceKind::Mpr => "MPR",
            SourceKind::Ldr => "LDR",
            SourceKind::Mfp => "MFP",
        }
    }
}

/// A candidate route and its provenance.
#[derive(Debug, Clone)]
pub struct CandidateRoute {
    /// Which provider produced it.
    pub source: SourceKind,
    /// The route.
    pub path: Path,
}

/// Generates the full candidate set for route requests, holding the
/// pre-built all-day transfer network so repeated requests are cheap.
pub struct CandidateGenerator<'a> {
    graph: &'a RoadGraph,
    trips: &'a [Trip],
    transfer: TransferNetwork,
    /// MPR parameters.
    pub mpr: MprParams,
    /// MFP parameters.
    pub mfp: MfpParams,
    /// LDR parameters.
    pub ldr: LdrParams,
}

impl<'a> CandidateGenerator<'a> {
    /// Builds the generator (aggregates the transfer network once).
    pub fn new(graph: &'a RoadGraph, trips: &'a [Trip]) -> Self {
        CandidateGenerator {
            graph,
            trips,
            transfer: TransferNetwork::build(graph, trips, None),
            mpr: MprParams::default(),
            mfp: MfpParams::default(),
            ldr: LdrParams::default(),
        }
    }

    /// The underlying all-day transfer network.
    pub fn transfer_network(&self) -> &TransferNetwork {
        &self.transfer
    }

    /// Historical-trip support near this OD pair (how much data backs the
    /// miners here) — consumed by route evaluation.
    pub fn od_support(&self, from: NodeId, to: NodeId) -> usize {
        local_support(self.graph, self.trips, from, to, &self.ldr)
    }

    /// Produces one candidate per available source. Sources that cannot
    /// route the request (disconnected etc.) are silently skipped; the
    /// result is empty only if no source can connect the pair.
    pub fn candidates(
        &self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Vec<CandidateRoute> {
        generate_candidates(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            from,
            to,
            departure,
        )
    }

    /// Produces candidate sets for a whole group of OD queries sharing a
    /// departure time with one fused mining pass — see
    /// [`generate_candidates_batch`]. Per query, byte-identical to
    /// [`CandidateGenerator::candidates`].
    pub fn candidates_batch(
        &self,
        queries: &[(NodeId, NodeId)],
        departure: TimeOfDay,
    ) -> Vec<Vec<CandidateRoute>> {
        generate_candidates_batch(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            queries,
            departure,
        )
    }

    /// Produces candidate sets for OD queries spanning several departure
    /// buckets with one set of all-day artifacts per origin and one MFP
    /// period aggregation per distinct departure — see
    /// [`generate_candidates_multi`]. Per query, byte-identical to
    /// [`CandidateGenerator::candidates`].
    pub fn candidates_multi(
        &self,
        queries: &[(NodeId, NodeId, TimeOfDay)],
    ) -> Vec<Vec<CandidateRoute>> {
        generate_candidates_multi(
            self.graph,
            self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            queries,
        )
    }
}

/// Produces one candidate per available source from explicitly supplied
/// world parts — the ownership-free core behind
/// [`CandidateGenerator::candidates`], usable by callers that hold the
/// graph and trips behind shared pointers instead of borrows (the
/// serving layer's owned worlds). Sources that cannot route the request
/// are silently skipped; the result is empty only if no source can
/// connect the pair.
pub fn generate_candidates(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    from: NodeId,
    to: NodeId,
    departure: TimeOfDay,
) -> Vec<CandidateRoute> {
    let mut out = Vec::with_capacity(SourceKind::ALL.len());
    if let Ok(p) = ShortestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::ShortestWebService,
            path: p,
        });
    }
    if let Ok(p) = FastestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::FastestWebService,
            path: p,
        });
    }
    if let Ok(p) = most_popular_route(graph, transfer, from, to, mpr) {
        out.push(CandidateRoute {
            source: SourceKind::Mpr,
            path: p,
        });
    }
    if let Ok(p) = local_driver_route(graph, trips, from, to, ldr) {
        out.push(CandidateRoute {
            source: SourceKind::Ldr,
            path: p,
        });
    }
    if let Ok(p) = most_frequent_path(graph, trips, from, to, departure, mfp) {
        out.push(CandidateRoute {
            source: SourceKind::Mfp,
            path: p,
        });
    }
    out
}

/// The time-invariant share of one origin's candidate mining, computed
/// once and reusable for **any** destination, **any** time bucket and
/// **any** later batch:
///
/// * the full MPR popularity expansion (all-day transfer network);
/// * the LDR origin-side locality scan (trip indices whose source is
///   near the origin), with stage-3 habit trees memoised per expert and
///   the stage-4 fastest-fallback tree memoised once (both lazily,
///   behind mutexes, so a shared `Arc<OriginArtifacts>` keeps absorbing
///   work from concurrent workers);
/// * per-period MFP expansions memoised by departure bits (the caller
///   supplies the period-filtered transfer network; the O(|trips|)
///   aggregation itself is shared *across* origins, not stored here).
///
/// All expansions are exhaustive ([`shortest_path_tree`] with no stop
/// target), trading a bounded amount of extra settle work for
/// destination-set independence — the property that lets one artifact
/// outlive the batch that built it. Every path reconstructed from these
/// trees is byte-identical to the per-request miners (single-target
/// searches are settle-order prefixes of exhaustive ones).
///
/// [`shortest_path_tree`]: cp_roadnet::routing::shortest_path_tree
pub struct OriginArtifacts {
    origin: NodeId,
    /// Exhaustive `-ln P(e)` popularity expansion.
    mpr_tree: DijkstraResult,
    /// Indices into the trip history whose source endpoint is local to
    /// the origin (order-preserving).
    origin_local: Vec<u32>,
    /// Lazily-built exhaustive habit trees, one per local expert.
    habit: Mutex<HashMap<DriverId, Arc<DijkstraResult>>>,
    /// Lazily-built exhaustive fastest-fallback tree.
    fastest: Mutex<Option<Arc<DijkstraResult>>>,
    /// Lazily-built exhaustive MFP expansions, keyed by departure bits.
    mfp_trees: Mutex<HashMap<u64, Arc<DijkstraResult>>>,
}

impl OriginArtifacts {
    /// Builds the eager artifacts (popularity tree + locality scan) for
    /// one origin; the per-expert and per-period trees fill in lazily as
    /// destinations are served.
    pub fn build(
        graph: &RoadGraph,
        trips: &[Trip],
        transfer: &TransferNetwork,
        mpr: &MprParams,
        ldr: &LdrParams,
        origin: NodeId,
    ) -> Self {
        OriginArtifacts {
            origin,
            mpr_tree: popularity_tree(graph, transfer, origin, mpr),
            origin_local: origin_local_indices(graph, trips, origin, ldr),
            habit: Mutex::new(HashMap::new()),
            fastest: Mutex::new(None),
            mfp_trees: Mutex::new(HashMap::new()),
        }
    }

    /// The origin these artifacts answer for.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    fn mpr(&self, graph: &RoadGraph, to: NodeId) -> Result<Path, RoadNetError> {
        let from = self.origin;
        if to == from {
            return Err(RoadNetError::NoPath { from, to });
        }
        self.mpr_tree
            .path_to(graph, to)
            .ok_or(RoadNetError::NoPath { from, to })
    }

    fn ldr(
        &self,
        graph: &RoadGraph,
        trips: &[Trip],
        params: &LdrParams,
        to: NodeId,
    ) -> Result<Path, RoadNetError> {
        let from = self.origin;
        if to == from {
            return Err(RoadNetError::NoPath { from, to });
        }
        // Destination-side half of the locality filter over the shared
        // origin-side subset (order-preserving ⇒ reproduces the
        // per-request `local_trips` exactly).
        let tp = graph.position(to);
        let r2 = params.endpoint_radius * params.endpoint_radius;
        let local: Vec<&Trip> = self
            .origin_local
            .iter()
            .map(|&i| &trips[i as usize])
            .filter(|t| graph.position(t.path.destination()).distance_sq(&tp) <= r2)
            .collect();
        let Some(expert) = pick_expert(&local) else {
            let tree = {
                let mut slot = self.fastest.lock().expect("artifact memo poisoned");
                Arc::clone(slot.get_or_insert_with(|| Arc::new(fastest_fallback_tree(graph, from))))
            };
            return tree
                .path_to(graph, to)
                .ok_or(RoadNetError::NoPath { from, to });
        };
        if let Some(path) = expert_modal_exact(graph, &local, expert, from, to) {
            return Ok(path);
        }
        let tree =
            {
                let mut memo = self.habit.lock().expect("artifact memo poisoned");
                Arc::clone(memo.entry(expert).or_insert_with(|| {
                    Arc::new(expert_habit_tree(graph, trips, expert, from, params))
                }))
            };
        tree.path_to(graph, to)
            .ok_or(RoadNetError::NoPath { from, to })
    }

    fn mfp(
        &self,
        graph: &RoadGraph,
        params: &MfpParams,
        period_tn: &TransferNetwork,
        departure: TimeOfDay,
        to: NodeId,
    ) -> Result<Path, RoadNetError> {
        let from = self.origin;
        if to == from {
            return Err(RoadNetError::NoPath { from, to });
        }
        let tree = {
            let mut memo = self.mfp_trees.lock().expect("artifact memo poisoned");
            Arc::clone(memo.entry(departure.0.to_bits()).or_insert_with(|| {
                Arc::new(frequency_discounted_tree(graph, period_tn, from, params))
            }))
        };
        tree.path_to(graph, to)
            .ok_or(RoadNetError::NoPath { from, to })
    }
}

impl std::fmt::Debug for OriginArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OriginArtifacts")
            .field("origin", &self.origin)
            .field("origin_local", &self.origin_local.len())
            .finish_non_exhaustive()
    }
}

/// Produces one query's candidate set from cached per-origin artifacts
/// plus the period-filtered transfer network for its departure —
/// byte-identical to [`generate_candidates`] over the same inputs
/// (same sources, same paths, same order).
///
/// Contract: `artifacts` was built for `(graph, trips, transfer, mpr,
/// ldr)` with `artifacts.origin() == the query origin`, and `period_tn`
/// is `TransferNetwork::build(graph, trips, Some((departure,
/// mfp.period_half_width)))` — the departure-bits memo inside the
/// artifact assumes the period network is a pure function of the
/// departure.
pub fn candidates_from_artifacts(
    graph: &RoadGraph,
    trips: &[Trip],
    mfp: &MfpParams,
    ldr: &LdrParams,
    artifacts: &OriginArtifacts,
    period_tn: &TransferNetwork,
    to: NodeId,
    departure: TimeOfDay,
) -> Vec<CandidateRoute> {
    let from = artifacts.origin;
    // Assembly order must match `generate_candidates` exactly.
    let mut out = Vec::with_capacity(SourceKind::ALL.len());
    if let Ok(p) = ShortestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::ShortestWebService,
            path: p,
        });
    }
    if let Ok(p) = FastestRouteService.route(graph, from, to) {
        out.push(CandidateRoute {
            source: SourceKind::FastestWebService,
            path: p,
        });
    }
    if let Ok(p) = artifacts.mpr(graph, to) {
        out.push(CandidateRoute {
            source: SourceKind::Mpr,
            path: p,
        });
    }
    if let Ok(p) = artifacts.ldr(graph, trips, ldr, to) {
        out.push(CandidateRoute {
            source: SourceKind::Ldr,
            path: p,
        });
    }
    if let Ok(p) = artifacts.mfp(graph, mfp, period_tn, departure, to) {
        out.push(CandidateRoute {
            source: SourceKind::Mfp,
            path: p,
        });
    }
    out
}

/// Produces candidate sets for a batch of OD queries that may span
/// **several departure buckets**, splitting the work along its true
/// dependency structure:
///
/// * per distinct **origin**, the all-day artifacts (MPR popularity
///   expansion, LDR locality scan and habit/fastest trees) are computed
///   once — they do not depend on the departure at all;
/// * per distinct **departure**, the O(|trips|) MFP period filter and
///   footmark aggregation run once, shared by every origin;
/// * per `(origin, departure)`, one frequency-discounted MFP expansion.
///
/// `out[i]` is byte-identical to `generate_candidates(…, queries[i].0,
/// queries[i].1, queries[i].2)`. This is the cross-bucket form behind
/// the serving layer's origin-cell coalescing; the single-departure
/// [`generate_candidates_batch`] is a thin wrapper over it.
pub fn generate_candidates_multi(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    queries: &[(NodeId, NodeId, TimeOfDay)],
) -> Vec<Vec<CandidateRoute>> {
    // Shared state in first-appearance order (deterministic, and linear
    // scans beat hashing at realistic batch cardinalities).
    let mut periods: Vec<(u64, TransferNetwork)> = Vec::new();
    let mut artifacts: Vec<(NodeId, OriginArtifacts)> = Vec::new();
    for &(from, _, departure) in queries {
        let bits = departure.0.to_bits();
        if !periods.iter().any(|(b, _)| *b == bits) {
            periods.push((
                bits,
                TransferNetwork::build(graph, trips, Some((departure, mfp.period_half_width))),
            ));
        }
        if !artifacts.iter().any(|(f, _)| *f == from) {
            artifacts.push((
                from,
                OriginArtifacts::build(graph, trips, transfer, mpr, ldr, from),
            ));
        }
    }
    queries
        .iter()
        .map(|&(from, to, departure)| {
            let art = &artifacts
                .iter()
                .find(|(f, _)| *f == from)
                .expect("artifact prebuilt for every origin")
                .1;
            let period_tn = &periods
                .iter()
                .find(|(b, _)| *b == departure.0.to_bits())
                .expect("period network prebuilt for every departure")
                .1;
            candidates_from_artifacts(graph, trips, mfp, ldr, art, period_tn, to, departure)
        })
        .collect()
}

/// Produces candidate sets for a batch of OD queries sharing a
/// departure time — the single-bucket special case of
/// [`generate_candidates_multi`]: one MFP period aggregation for the
/// whole batch, one set of all-day artifacts per distinct origin.
///
/// `out[i]` is byte-identical to
/// `generate_candidates(graph, trips, transfer, mpr, mfp, ldr,
/// queries[i].0, queries[i].1, departure)` — same sources, same paths,
/// same order — so the serving layer can swap between the per-request
/// and fused paths freely. Queries need not share an origin; fusion
/// simply degrades gracefully (a batch of distinct origins still shares
/// the MFP aggregation).
pub fn generate_candidates_batch(
    graph: &RoadGraph,
    trips: &[Trip],
    transfer: &TransferNetwork,
    mpr: &MprParams,
    mfp: &MfpParams,
    ldr: &LdrParams,
    queries: &[(NodeId, NodeId)],
    departure: TimeOfDay,
) -> Vec<Vec<CandidateRoute>> {
    let multi: Vec<(NodeId, NodeId, TimeOfDay)> = queries
        .iter()
        .map(|&(from, to)| (from, to, departure))
        .collect();
    generate_candidates_multi(graph, trips, transfer, mpr, mfp, ldr, &multi)
}

/// Deduplicates candidates into distinct paths, remembering every source
/// that proposed each path. Order follows first appearance.
pub fn distinct_candidates(candidates: &[CandidateRoute]) -> Vec<(Path, Vec<SourceKind>)> {
    let mut out: Vec<(Path, Vec<SourceKind>)> = Vec::new();
    for c in candidates {
        if let Some(entry) = out.iter_mut().find(|(p, _)| *p == c.path) {
            entry.1.push(c.source);
        } else {
            out.push((c.path.clone(), vec![c.source]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn setup() -> (cp_roadnet::City, cp_traj::TripDataset) {
        let city = generate_city(&CityParams::small(), 41).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 41).unwrap();
        (city, ds)
    }

    #[test]
    fn produces_all_five_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        assert_eq!(cs.len(), 5);
        let kinds: Vec<SourceKind> = cs.iter().map(|c| c.source).collect();
        for k in SourceKind::ALL {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
        for c in &cs {
            assert_eq!(c.path.source(), NodeId(0));
            assert_eq!(c.path.destination(), NodeId(59));
        }
    }

    #[test]
    fn distinct_candidates_merges_agreeing_sources() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let cs = gen.candidates(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let distinct = distinct_candidates(&cs);
        assert!(!distinct.is_empty());
        assert!(distinct.len() <= cs.len());
        let total: usize = distinct.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, cs.len(), "every source accounted for exactly once");
        // No duplicate paths remain.
        for i in 0..distinct.len() {
            for j in i + 1..distinct.len() {
                assert_ne!(distinct[i].0, distinct[j].0);
            }
        }
    }

    #[test]
    fn fused_batch_matches_per_request_candidates() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let dep = TimeOfDay::from_hours(8.0);
        // Shared-origin group + a second origin + duplicates + a
        // degenerate same-node query.
        let queries: Vec<(NodeId, NodeId)> = vec![
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(31)),
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(0)),
            (NodeId(12), NodeId(47)),
            (NodeId(0), NodeId(7)),
        ];
        let fused = gen.candidates_batch(&queries, dep);
        assert_eq!(fused.len(), queries.len());
        for (q, (&(from, to), got)) in queries.iter().zip(&fused).enumerate() {
            let want = gen.candidates(from, to, dep);
            assert_eq!(got.len(), want.len(), "query {q}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source, "query {q}");
                assert_eq!(x.path, y.path, "query {q}");
            }
        }
        // The same-node query yields no candidates on either path.
        assert!(fused[3].is_empty());
    }

    #[test]
    fn multi_bucket_batch_matches_per_request_candidates() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        // Two origins × three departure buckets, with duplicates and a
        // degenerate query — the all-day artifacts must be shared across
        // buckets while each bucket keeps its own MFP aggregation.
        let deps = [7.0, 8.0, 9.0].map(TimeOfDay::from_hours);
        let mut queries: Vec<(NodeId, NodeId, TimeOfDay)> = Vec::new();
        for (i, &(from, to)) in [
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(31)),
            (NodeId(12), NodeId(47)),
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(0)),
            (NodeId(12), NodeId(7)),
        ]
        .iter()
        .enumerate()
        {
            queries.push((from, to, deps[i % deps.len()]));
        }
        let fused = gen.candidates_multi(&queries);
        assert_eq!(fused.len(), queries.len());
        for (q, (&(from, to, dep), got)) in queries.iter().zip(&fused).enumerate() {
            let want = gen.candidates(from, to, dep);
            assert_eq!(got.len(), want.len(), "query {q}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source, "query {q}");
                assert_eq!(x.path, y.path, "query {q}");
            }
        }
    }

    #[test]
    fn shared_artifacts_answer_any_destination_byte_identically() {
        let (city, ds) = setup();
        let gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let g = &city.graph;
        let dep = TimeOfDay::from_hours(8.0);
        let from = NodeId(0);
        // One artifact built up front, destinations chosen afterwards —
        // the cross-batch reuse contract.
        let art = OriginArtifacts::build(
            g,
            &ds.trips,
            gen.transfer_network(),
            &gen.mpr,
            &gen.ldr,
            from,
        );
        let period = TransferNetwork::build(g, &ds.trips, Some((dep, gen.mfp.period_half_width)));
        for b in [59u32, 31, 7, 44, 0] {
            let got = candidates_from_artifacts(
                g,
                &ds.trips,
                &gen.mfp,
                &gen.ldr,
                &art,
                &period,
                NodeId(b),
                dep,
            );
            let want = gen.candidates(from, NodeId(b), dep);
            assert_eq!(got.len(), want.len(), "to {b}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source, "to {b}");
                assert_eq!(x.path, y.path, "to {b}");
            }
        }
    }

    #[test]
    fn od_support_is_monotone_in_radius() {
        let (city, ds) = setup();
        let mut gen = CandidateGenerator::new(&city.graph, &ds.trips);
        let narrow = {
            gen.ldr.endpoint_radius = 100.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        let wide = {
            gen.ldr.endpoint_radius = 2000.0;
            gen.od_support(NodeId(0), NodeId(59))
        };
        assert!(wide >= narrow);
    }

    #[test]
    fn source_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            SourceKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SourceKind::ALL.len());
    }
}
