//! cp-gateway: a std-only HTTP/1.1 serving edge over the CrowdPlanner
//! [`Platform`](cp_service::Platform).
//!
//! The platform's [`submit`](cp_service::Platform::submit) API is an
//! in-process admission-controlled queue; this crate puts a network
//! front on it without pulling in an async runtime or an HTTP
//! dependency — everything is `std`: a blocking acceptor pool
//! ([`listener`]), a hand-rolled hardened HTTP/1.1 parser ([`http`]),
//! per-client token-bucket rate limiting and a global in-flight cap
//! ([`limits`]), and a generation-versioned per-connection response
//! cache ([`session`]).
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /route?city=C&o=A&d=B&t=H` | Plan a route in city `C` from node `A` to node `B` departing at hour `H` |
//! | `GET /stats` | Gateway + platform counters (JSON) |
//! | `GET /trace` | Span-level trace report (JSON) |
//! | `GET /healthz` | Liveness probe |
//!
//! # Error mapping
//!
//! Platform admission control and serving errors surface as HTTP
//! status codes instead of leaking internals:
//!
//! | Condition | Status |
//! |---|---|
//! | ingress full ([`Busy`](cp_service::ServiceError::Busy)), crowd quota exhausted, rate-limited, in-flight cap | `429` + `Retry-After` |
//! | unknown city / unknown path | `404` |
//! | ticket deadline expired | `504` |
//! | platform draining / connection queue full | `503` |
//! | malformed parameters | `400`; no resolvable candidates | `422` |
//!
//! # Lifecycle
//!
//! ```no_run
//! use cp_gateway::{Gateway, GatewayConfig};
//! use cp_roadnet::{generate_city, CityParams};
//! use cp_service::{Platform, PlatformConfig, ServiceConfig, World};
//! use cp_traj::{generate_trips, TripGenParams};
//! use std::sync::Arc;
//!
//! let city = generate_city(&CityParams::small(), 7).unwrap();
//! let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
//! let platform = Arc::new(Platform::start(PlatformConfig::default()));
//! platform.register_city(
//!     Arc::new(World::new(city.graph, trips.trips)),
//!     ServiceConfig::strict_deterministic(),
//! );
//! let gw = Gateway::start(Arc::clone(&platform), GatewayConfig::default()).unwrap();
//! println!("serving on http://{}", gw.local_addr());
//! // ... serve ...
//! gw.shutdown();                       // drain the edge first,
//! if let Ok(p) = Arc::try_unwrap(platform) { p.shutdown(); } // then the platform
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod handlers;
pub mod http;
pub mod limits;
pub mod listener;
pub mod session;

pub use handlers::{route_json, AppState};
pub use http::{HttpError, HttpLimits, HttpRequest, Response};
pub use limits::{GatewayStats, GatewayStatsSnapshot, InflightGate, RateLimitConfig, RateLimiter};
pub use listener::{Gateway, GatewayConfig};
pub use session::{SessionCache, SessionKey};
