//! Request dispatch: the endpoint surface and its error mapping.
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `GET /route?city=C&o=FROM&d=TO&t=HOURS` | submit → deadline-bounded ticket wait → route JSON |
//! | `GET /stats` | gateway + platform + aggregate service statistics as JSON |
//! | `GET /trace` | [`Platform::trace_report`] JSON (empty unless cities trace) |
//! | `GET /healthz` | liveness probe (`{"ok": true, ...}` + per-city breaker states) |
//!
//! Error mapping (see the crate README for the full table): platform
//! admission [`ServiceError::Busy`] and crowd starvation → **429** with
//! `Retry-After`; unknown city or path → **404**, as is a city
//! deregistered at runtime ([`ServiceError::CityOffboarded`] — the
//! resource is gone, retrying will not help); route-deadline expiry
//! → **504** (the ticket is abandoned, the work still completes and
//! warms the truth store); malformed parameters → **400**; no candidate
//! route → **422**; resolver panics and other upstream failures →
//! **500**; platform shutdown or edge drain → **503**.
//!
//! The `/route` JSON is rendered by [`route_json`], a pure function of
//! the request and the platform's [`ServedRoute`] — the wire
//! equivalence tests compare gateway bodies byte-for-byte against this
//! function applied to in-process `Platform::submit` results.

use crate::http::{escape_json, HttpRequest, Response};
use crate::limits::{GatewayStats, InflightGate, RateLimiter};
use crate::session::{SessionCache, SessionKey};
use cp_service::{
    CityId, CityQueueSnapshot, Platform, PlatformSnapshot, Request, Served, ServedRoute,
    ServiceError, StatsSnapshot,
};
use cp_traj::TimeOfDay;
use std::net::IpAddr;
use std::sync::Arc;
use std::time::Duration;

/// Everything the dispatch path needs, shared by all handler threads.
pub struct AppState {
    /// The serving platform behind this edge.
    pub platform: Arc<Platform>,
    /// Edge counters.
    pub stats: GatewayStats,
    /// Per-client token buckets (`None` = unlimited).
    pub limiter: Option<RateLimiter>,
    /// The global in-flight cap.
    pub inflight: InflightGate,
    /// How long `/route` may wait on its ticket before answering 504.
    pub route_deadline: Duration,
}

/// Dispatches one parsed request to its endpoint. `session` is the
/// connection's private response cache; `peer` keys the rate limiter.
pub fn handle(
    state: &AppState,
    session: &mut SessionCache,
    req: &HttpRequest,
    peer: IpAddr,
) -> Response {
    state.stats.inc(&state.stats.requests);
    if req.method != "GET" {
        state.stats.inc(&state.stats.method_not_allowed);
        return Response::error(405, "method_not_allowed", "this edge only serves GET");
    }
    match req.path.as_str() {
        "/route" => route(state, session, req, peer),
        "/stats" => stats(state),
        "/trace" => {
            state.stats.inc(&state.stats.ok);
            Response::json(200, state.platform.trace_report().to_json())
        }
        "/healthz" => {
            state.stats.inc(&state.stats.ok);
            Response::json(200, healthz_json(&state.platform))
        }
        other => {
            state.stats.inc(&state.stats.not_found);
            Response::error(404, "not_found", &format!("no endpoint at {other}"))
        }
    }
}

/// `GET /route`: admission (rate limit, in-flight cap), parameter
/// parsing, session-cache lookup, submit, deadline-bounded wait.
fn route(
    state: &AppState,
    session: &mut SessionCache,
    req: &HttpRequest,
    peer: IpAddr,
) -> Response {
    if let Some(limiter) = &state.limiter {
        if !limiter.allow(peer) {
            state.stats.inc(&state.stats.rate_limited);
            return Response::error(429, "rate_limited", "per-client rate exceeded").retry_after(1);
        }
    }
    let Some(_permit) = state.inflight.try_enter() else {
        state.stats.inc(&state.stats.inflight_shed);
        return Response::error(503, "overloaded", "edge in-flight cap reached").retry_after(1);
    };
    let (city, from, to, hours) = match parse_route_params(req) {
        Ok(params) => params,
        Err(detail) => {
            state.stats.inc(&state.stats.bad_params);
            return Response::error(400, "bad_params", detail);
        }
    };
    let departure = TimeOfDay::from_hours(hours);
    // The city's current mining-state generation versions the session
    // cache; an unknown city 404s before any submit.
    let Some(service) = state.platform.city_service(CityId(city)) else {
        state.stats.inc(&state.stats.not_found);
        return Response::error(
            404,
            "unknown_city",
            &format!("no city registered under {city}"),
        );
    };
    let generation = service.world().generation();
    let key = SessionKey {
        city,
        from,
        to,
        t_bits: departure.0.to_bits(),
    };
    if let Some(body) = session.get(key, generation) {
        state.stats.inc(&state.stats.ok);
        state.stats.inc(&state.stats.session_hits);
        return Response::json(200, body.to_string());
    }
    let request = Request::to_city(
        CityId(city),
        cp_roadnet::NodeId(from),
        cp_roadnet::NodeId(to),
        departure,
    );
    let ticket = match state.platform.submit(request) {
        Ok(ticket) => ticket,
        Err(e) => return upstream_error(state, &e),
    };
    match ticket.wait_timeout(state.route_deadline) {
        Ok(Ok(served)) => {
            let body = route_json(&request, &served, service.world().graph());
            session.put(key, generation, body.clone());
            state.stats.inc(&state.stats.ok);
            Response::json(200, body)
        }
        Ok(Err(e)) => upstream_error(state, &e),
        Err(_abandoned) => {
            // Deadline expired. Dropping the ticket abandons the result,
            // never the work: the request still resolves and feeds the
            // truth store, so a retry after Retry-After is cheap.
            state.stats.inc(&state.stats.timeouts);
            Response::error(504, "deadline", "route did not resolve within the deadline")
                .retry_after(1)
        }
    }
}

/// Maps a platform/service error onto the wire, counting it.
fn upstream_error(state: &AppState, e: &ServiceError) -> Response {
    match e {
        ServiceError::Busy => {
            state.stats.inc(&state.stats.upstream_busy);
            Response::error(429, "busy", "platform ingress queue full").retry_after(1)
        }
        ServiceError::CrowdStarved { .. } => {
            state.stats.inc(&state.stats.upstream_busy);
            Response::error(429, "crowd_starved", "crowd quota exhausted; back off").retry_after(2)
        }
        ServiceError::UnknownCity(city) => {
            state.stats.inc(&state.stats.not_found);
            Response::error(
                404,
                "unknown_city",
                &format!("no city registered under {city}"),
            )
        }
        ServiceError::CityOffboarded(city) => {
            // The city existed but was deregistered: the resource is
            // gone for good, so (unlike 429/503) no Retry-After.
            state.stats.inc(&state.stats.not_found);
            Response::error(
                404,
                "city_offboarded",
                &format!("{city} was deregistered and no longer serves"),
            )
        }
        ServiceError::ShuttingDown => {
            state.stats.inc(&state.stats.unavailable);
            Response::error(503, "shutting_down", "platform is draining").closing()
        }
        ServiceError::NoCandidates => {
            state.stats.inc(&state.stats.no_route);
            Response::error(422, "no_route", "no candidate route connects the OD pair")
        }
        ServiceError::LeaderFailed | ServiceError::ResolverPanicked | ServiceError::Core(_) => {
            state.stats.inc(&state.stats.server_errors);
            Response::error(500, "upstream", &escape_json(&e.to_string()))
        }
    }
}

/// Parses and validates `/route`'s query parameters.
fn parse_route_params(req: &HttpRequest) -> Result<(u32, u32, u32, f64), &'static str> {
    let city: u32 = req
        .query_param("city")
        .ok_or("missing `city`")?
        .parse()
        .map_err(|_| "`city` must be a non-negative integer")?;
    let from: u32 = req
        .query_param("o")
        .ok_or("missing `o` (origin node)")?
        .parse()
        .map_err(|_| "`o` must be a non-negative integer")?;
    let to: u32 = req
        .query_param("d")
        .ok_or("missing `d` (destination node)")?
        .parse()
        .map_err(|_| "`d` must be a non-negative integer")?;
    let hours: f64 = req
        .query_param("t")
        .ok_or("missing `t` (departure, hours)")?
        .parse()
        .map_err(|_| "`t` must be a number of hours")?;
    if !hours.is_finite() {
        return Err("`t` must be finite");
    }
    Ok((city, from, to, hours))
}

/// Renders one served route as JSON — deterministically: float fields
/// use Rust's shortest-round-trip formatting, so two serves of the same
/// `ServedRoute` always produce identical bytes (the property the wire
/// equivalence tests pin).
pub fn route_json(req: &Request, served: &ServedRoute, graph: &cp_roadnet::RoadGraph) -> String {
    let (served_kind, resolution) = match served.served {
        Served::TruthHit => ("truth_hit", "null".to_string()),
        Served::Deduplicated => ("dedup", "null".to_string()),
        Served::Resolved(r) => ("resolved", format!("\"{}\"", resolution_name(r))),
    };
    let nodes: Vec<String> = served
        .path
        .nodes()
        .iter()
        .map(|n| n.0.to_string())
        .collect();
    format!(
        concat!(
            "{{\"city\": {}, \"from\": {}, \"to\": {}, \"departure_s\": {:?}, ",
            "\"served\": \"{}\", \"resolution\": {}, \"confidence\": {:?}, ",
            "\"travel_time_s\": {:?}, \"length_m\": {:?}, \"nodes\": [{}]}}"
        ),
        req.city.0,
        req.from.0,
        req.to.0,
        req.departure.0,
        served_kind,
        resolution,
        served.confidence,
        served.path.travel_time(graph),
        served.path.length(graph),
        nodes.join(", "),
    )
}

fn resolution_name(r: cp_core::Resolution) -> &'static str {
    match r {
        cp_core::Resolution::ReusedTruth => "reused_truth",
        cp_core::Resolution::Agreement => "agreement",
        cp_core::Resolution::Confident => "confident",
        cp_core::Resolution::Crowd => "crowd",
        cp_core::Resolution::Fallback => "fallback",
    }
}

/// `GET /stats`: the gateway's own counters, the platform's admission
/// and dispatch accounting, and the aggregate per-city service
/// statistics, one JSON document.
fn stats(state: &AppState) -> Response {
    let gw = state.stats.snapshot();
    let snap = state.platform.stats();
    let body = format!(
        "{{\n  \"gateway\": {},\n  \"in_flight\": {},\n  \"platform\": {},\n  \"aggregate\": {}\n}}",
        gw.to_json(),
        state.inflight.in_flight(),
        platform_json(&snap),
        aggregate_json(&snap.aggregate),
    );
    state.stats.inc(&state.stats.ok);
    Response::json(200, body)
}

/// The platform's admission/dispatch counters as JSON.
fn platform_json(snap: &PlatformSnapshot) -> String {
    let durability = match &snap.durability {
        None => "null".to_string(),
        Some(d) => format!(
            concat!(
                "{{\"events_logged\": {}, \"events_shed\": {}, \"wal_bytes\": {}, ",
                "\"io_errors\": {}, \"write_retries\": {}, \"writes_recovered\": {}, ",
                "\"checkpoints\": {}, \"last_checkpoint_seq\": {}}}"
            ),
            d.events_logged,
            d.events_shed,
            d.wal_bytes,
            d.io_errors,
            d.write_retries,
            d.writes_recovered,
            d.checkpoints,
            d.last_checkpoint_seq,
        ),
    };
    let chaos = match &snap.chaos {
        None => "null".to_string(),
        Some(c) => format!(
            concat!(
                "{{\"seed\": {}, \"crowd_no_shows\": {}, \"crowd_slow_answers\": {}, ",
                "\"slow_workers\": {}, \"stalled_workers\": {}, \"resolver_panics\": {}, ",
                "\"durability_io_errors\": {}, \"generation_bumps\": {}, ",
                "\"total_injected\": {}}}"
            ),
            c.seed,
            c.crowd_no_shows,
            c.crowd_slow_answers,
            c.slow_workers,
            c.stalled_workers,
            c.resolver_panics,
            c.durability_io_errors,
            c.generation_bumps,
            c.total_injected(),
        ),
    };
    format!(
        concat!(
            "{{\"submitted\": {}, \"admitted\": {}, \"rejected_busy\": {}, ",
            "\"rejected_unknown_city\": {}, \"rejected_shutdown\": {}, ",
            "\"rejected_offboarded\": {}, \"shed\": {}, ",
            "\"completed\": {}, \"cities\": {}, \"queue_depth\": {}, ",
            "\"batched_requests\": {}, \"unbatched_requests\": {}, ",
            "\"batch_runs\": {}, \"batch_max\": {}, \"batch_adaptive\": {}, ",
            "\"batch_delay_us\": {}, \"maintenance_sweeps\": {}, ",
            "\"per_city\": {}, \"durability\": {}, \"chaos\": {}}}"
        ),
        snap.submitted,
        snap.admitted,
        snap.rejected_busy,
        snap.rejected_unknown_city,
        snap.rejected_shutdown,
        snap.rejected_offboarded,
        snap.shed,
        snap.completed,
        snap.cities,
        snap.queue_depth,
        snap.batched_requests,
        snap.unbatched_requests,
        snap.batch_runs,
        snap.batch_max,
        snap.batch_adaptive,
        snap.batch_delay.as_micros(),
        snap.maintenance_sweeps,
        per_city_json(&snap.per_city),
        durability,
        chaos,
    )
}

/// Each city's slice of the sharded ingress — queue depth, DRR weight,
/// shed count and the city's adaptive-controller choices — as a JSON
/// array indexed by city.
fn per_city_json(per_city: &[CityQueueSnapshot]) -> String {
    let rows: Vec<String> = per_city
        .iter()
        .map(|c| {
            let breaker = match &c.breaker {
                None => "null".to_string(),
                Some(b) => format!(
                    concat!(
                        "{{\"state\": \"{}\", \"trips\": {}, \"probes\": {}, ",
                        "\"recoveries\": {}, \"machine_serves\": {}, ",
                        "\"window_failures\": {}, \"window_samples\": {}}}"
                    ),
                    b.state.name(),
                    b.trips,
                    b.probes,
                    b.recoveries,
                    b.machine_serves,
                    b.window_failures,
                    b.window_samples,
                ),
            };
            format!(
                concat!(
                    "{{\"city\": {}, \"weight\": {}, \"queue_depth\": {}, ",
                    "\"admitted\": {}, \"rejected_busy\": {}, ",
                    "\"batched_requests\": {}, \"unbatched_requests\": {}, ",
                    "\"batch_delay_us\": {}, \"max_batch\": {}, ",
                    "\"offboarded\": {}, \"shed\": {}, \"breaker\": {}}}"
                ),
                c.city.index(),
                c.weight,
                c.queue_depth,
                c.admitted,
                c.rejected_busy,
                c.batched_requests,
                c.unbatched_requests,
                c.batch_delay.as_micros(),
                c.max_batch,
                c.offboarded,
                c.shed,
                breaker,
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// `GET /healthz`: always `ok` while the edge answers (liveness), plus
/// the degradation picture — each crowd city's circuit-breaker state
/// and a rolled-up `degraded` flag (true when any breaker is not
/// closed, i.e. some city is serving machine-only or probing).
fn healthz_json(platform: &Platform) -> String {
    let snap = platform.stats();
    let mut degraded = false;
    let breakers: Vec<String> = snap
        .per_city
        .iter()
        .filter_map(|c| {
            let b = c.breaker.as_ref()?;
            if b.state != cp_service::BreakerState::Closed {
                degraded = true;
            }
            Some(format!(
                "{{\"city\": {}, \"state\": \"{}\"}}",
                c.city.index(),
                b.state.name()
            ))
        })
        .collect();
    format!(
        "{{\"ok\": true, \"degraded\": {}, \"breakers\": [{}]}}",
        degraded,
        breakers.join(", ")
    )
}

/// The aggregate service statistics as JSON (counter subset + derived
/// rates + sojourn percentiles).
fn aggregate_json(agg: &StatsSnapshot) -> String {
    format!(
        concat!(
            "{{\"requests\": {}, \"truth_hits\": {}, \"dedup_hits\": {}, ",
            "\"resolved\": {}, \"errors\": {}, \"truth_hit_rate\": {:.4}, ",
            "\"cache_hit_rate\": {:.4}, \"artifact_hit_rate\": {:.4}, ",
            "\"fused_minings\": {}, \"crowd_questions\": {}, ",
            "\"crowd_starved\": {}, \"latency_us\": ",
            "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}"
        ),
        agg.requests,
        agg.truth_hits,
        agg.dedup_hits,
        agg.resolved,
        agg.errors,
        agg.truth_hit_rate(),
        agg.cache_hit_rate(),
        agg.artifact_hit_rate(),
        agg.fused_minings,
        agg.crowd_questions,
        agg.crowd_starved,
        agg.latency.p50.as_micros(),
        agg.latency.p95.as_micros(),
        agg.latency.p99.as_micros(),
        agg.latency.max.as_micros(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpLimits;
    use cp_roadnet::{generate_city, CityParams};
    use cp_service::{PlatformConfig, ServiceConfig, World};
    use cp_traj::{generate_trips, TripGenParams};
    use std::net::Ipv4Addr;

    fn test_state() -> (AppState, CityId) {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let platform = Arc::new(Platform::start(PlatformConfig::default()));
        let id = platform.register_city(
            Arc::new(World::new(city.graph, trips.trips)),
            ServiceConfig::strict_deterministic(),
        );
        (
            AppState {
                platform,
                stats: GatewayStats::new(),
                limiter: None,
                inflight: InflightGate::new(0),
                route_deadline: Duration::from_secs(10),
            },
            id,
        )
    }

    fn get(target: &str) -> HttpRequest {
        let wire = format!("GET {target} HTTP/1.1\r\n\r\n");
        let mut reader = std::io::Cursor::new(wire.into_bytes());
        let mut buf = Vec::new();
        crate::http::read_request(&mut reader, &mut buf, &HttpLimits::default()).unwrap()
    }

    fn peer() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    #[test]
    fn route_serves_json_and_session_cache_repeats_it() {
        let (state, id) = test_state();
        let mut session = SessionCache::new(8);
        let req = get(&format!("/route?city={}&o=0&d=59&t=8.0", id.0));
        let first = handle(&state, &mut session, &req, peer());
        assert_eq!(first.status, 200);
        assert!(first.body.contains("\"from\": 0"));
        assert!(first.body.contains("\"nodes\": ["));
        let second = handle(&state, &mut session, &req, peer());
        assert_eq!(second.status, 200);
        assert_eq!(second.body, first.body, "session hit repeats the bytes");
        let snap = state.stats.snapshot();
        assert_eq!(snap.session_hits, 1);
        assert!(snap.is_consistent());
    }

    #[test]
    fn generation_bump_invalidates_the_session_cache() {
        let (state, id) = test_state();
        let mut session = SessionCache::new(8);
        let req = get(&format!("/route?city={}&o=1&d=40&t=8.0", id.0));
        assert_eq!(handle(&state, &mut session, &req, peer()).status, 200);
        let service = state.platform.city_service(id).unwrap();
        service.world().bump_generation();
        assert_eq!(handle(&state, &mut session, &req, peer()).status, 200);
        assert_eq!(
            state.stats.snapshot().session_hits,
            0,
            "a bumped generation must bypass the session cache"
        );
    }

    #[test]
    fn error_mapping_covers_the_table() {
        let (state, id) = test_state();
        let mut session = SessionCache::new(0);
        // Unknown path → 404.
        assert_eq!(
            handle(&state, &mut session, &get("/nope"), peer()).status,
            404
        );
        // Unknown city → 404.
        assert_eq!(
            handle(
                &state,
                &mut session,
                &get("/route?city=99&o=0&d=1&t=8"),
                peer()
            )
            .status,
            404
        );
        // Missing / malformed params → 400.
        for bad in [
            "/route?city=0&o=0&d=1",
            "/route?o=0&d=1&t=8",
            "/route?city=0&o=zero&d=1&t=8",
            "/route?city=0&o=0&d=1&t=inf",
        ] {
            assert_eq!(
                handle(&state, &mut session, &get(bad), peer()).status,
                400,
                "{bad}"
            );
        }
        // Non-GET → 405.
        let wire = b"POST /route HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec();
        let mut reader = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let post =
            crate::http::read_request(&mut reader, &mut buf, &HttpLimits::default()).unwrap();
        assert_eq!(handle(&state, &mut session, &post, peer()).status, 405);
        // A served route still works after all that.
        assert_eq!(
            handle(
                &state,
                &mut session,
                &get(&format!("/route?city={}&o=0&d=59&t=8.0", id.0)),
                peer()
            )
            .status,
            200
        );
        let snap = state.stats.snapshot();
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn rate_limiting_answers_429_with_retry_after() {
        let (mut state, id) = test_state();
        state.limiter = Some(RateLimiter::new(crate::limits::RateLimitConfig {
            per_client_rps: 0.001,
            burst: 2.0,
        }));
        let mut session = SessionCache::new(0);
        let req = get(&format!("/route?city={}&o=0&d=59&t=8.0", id.0));
        assert_eq!(handle(&state, &mut session, &req, peer()).status, 200);
        assert_eq!(handle(&state, &mut session, &req, peer()).status, 200);
        let limited = handle(&state, &mut session, &req, peer());
        assert_eq!(limited.status, 429);
        assert_eq!(limited.retry_after, Some(1));
        assert_eq!(state.stats.snapshot().rate_limited, 1);
    }

    #[test]
    fn stats_and_trace_endpoints_serve_json() {
        let (state, id) = test_state();
        let mut session = SessionCache::new(0);
        let _ = handle(
            &state,
            &mut session,
            &get(&format!("/route?city={}&o=0&d=59&t=8.0", id.0)),
            peer(),
        );
        let stats = handle(&state, &mut session, &get("/stats"), peer());
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("\"gateway\""));
        assert!(stats.body.contains("\"platform\""));
        assert!(stats.body.contains("\"aggregate\""));
        let trace = handle(&state, &mut session, &get("/trace"), peer());
        assert_eq!(trace.status, 200);
        assert!(trace.body.contains("\"cities\""));
        assert_eq!(
            handle(&state, &mut session, &get("/healthz"), peer()).status,
            200
        );
    }
}
