//! Per-connection response caching for repeat-OD clients.
//!
//! A commuter app polls the same OD pair on one keep-alive connection
//! every few seconds; the platform would serve each poll from its truth
//! store, but even a truth hit pays submit → queue → worker dispatch →
//! ticket wakeup. The session cache short-circuits the repeat *at the
//! edge*: a small per-connection LRU of fully rendered `/route`
//! response bodies, keyed by the exact request parameters.
//!
//! Entries are **generation-versioned** against
//! [`World::generation`](cp_service::World::generation), exactly like
//! the serving layer's `MiningArtifactCache`: a response rendered at
//! generation *g* is served only while the city's world is still at
//! *g*. After `bump_generation` (mining-state mutation), the stale body
//! is dropped and the request goes back through the platform — the edge
//! can never pin a client to a pre-mutation route.
//!
//! The cache is connection-private (it lives on the handler's stack
//! while the connection does), so it needs no locking and dies with the
//! connection — it is affinity caching, not a shared response cache
//! with invalidation traffic.

use std::collections::VecDeque;

/// Exact identity of a cacheable `/route` request on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKey {
    /// City id.
    pub city: u32,
    /// Origin node.
    pub from: u32,
    /// Destination node.
    pub to: u32,
    /// Departure time bits (`TimeOfDay.0.to_bits()` — exact match only;
    /// canonicalisation happens behind the platform, not at the edge).
    pub t_bits: u64,
}

struct SessionEntry {
    key: SessionKey,
    /// The world generation the body was rendered at.
    generation: u64,
    body: String,
}

/// A bounded per-connection LRU of rendered response bodies.
pub struct SessionCache {
    cap: usize,
    /// Most-recently-used at the back.
    entries: VecDeque<SessionEntry>,
}

impl SessionCache {
    /// A cache holding at most `cap` rendered responses (0 disables it).
    pub fn new(cap: usize) -> SessionCache {
        SessionCache {
            cap,
            entries: VecDeque::with_capacity(cap.min(64)),
        }
    }

    /// The cached body for `key`, if it exists *and* was rendered at
    /// `current_generation`. A stale entry (older generation) is dropped
    /// on sight — serving it would pin the client to pre-mutation
    /// mining state.
    pub fn get(&mut self, key: SessionKey, current_generation: u64) -> Option<&str> {
        let idx = self.entries.iter().position(|e| e.key == key)?;
        if self.entries[idx].generation != current_generation {
            self.entries.remove(idx);
            return None;
        }
        // Move to the back (most recently used).
        let entry = self.entries.remove(idx).expect("index in bounds");
        self.entries.push_back(entry);
        self.entries.back().map(|e| e.body.as_str())
    }

    /// Stores a rendered body for `key` at `generation`, evicting the
    /// least-recently-used entry when full.
    pub fn put(&mut self, key: SessionKey, generation: u64, body: String) {
        if self.cap == 0 {
            return;
        }
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            self.entries.remove(idx);
        }
        while self.entries.len() >= self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(SessionEntry {
            key,
            generation,
            body,
        });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> SessionKey {
        SessionKey {
            city: 0,
            from: n,
            to: n + 1,
            t_bits: 42,
        }
    }

    #[test]
    fn hit_requires_matching_generation() {
        let mut cache = SessionCache::new(4);
        cache.put(key(1), 7, "body".into());
        assert_eq!(cache.get(key(1), 7), Some("body"));
        // A generation bump invalidates on sight.
        assert_eq!(cache.get(key(1), 8), None);
        assert!(cache.is_empty(), "stale entry dropped");
    }

    #[test]
    fn lru_evicts_oldest_and_get_refreshes_recency() {
        let mut cache = SessionCache::new(2);
        cache.put(key(1), 0, "a".into());
        cache.put(key(2), 0, "b".into());
        assert_eq!(cache.get(key(1), 0), Some("a")); // 1 now most recent
        cache.put(key(3), 0, "c".into()); // evicts 2
        assert_eq!(cache.get(key(2), 0), None);
        assert_eq!(cache.get(key(1), 0), Some("a"));
        assert_eq!(cache.get(key(3), 0), Some("c"));
    }

    #[test]
    fn put_replaces_same_key_and_zero_capacity_disables() {
        let mut cache = SessionCache::new(2);
        cache.put(key(1), 0, "old".into());
        cache.put(key(1), 1, "new".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key(1), 1), Some("new"));

        let mut off = SessionCache::new(0);
        off.put(key(1), 0, "x".into());
        assert_eq!(off.get(key(1), 0), None);
    }
}
