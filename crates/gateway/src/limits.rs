//! Edge admission: per-client token buckets, the global in-flight cap,
//! and the gateway's own statistics.
//!
//! The platform already sheds load at its bounded ingress queue
//! ([`ServiceError::Busy`](cp_service::ServiceError::Busy) → 429 on the
//! wire); the edge adds two defences *in front* of that queue:
//!
//! * **per-client rate limiting** — a token bucket per peer IP: clients
//!   refill at `per_client_rps` with a `burst` allowance, so one greedy
//!   client cannot monopolise the ingress queue that all clients share;
//! * **global in-flight cap** — a hard bound on requests concurrently
//!   inside handler logic (parsing done, response not yet written); a
//!   saturated edge answers 503 + `Retry-After` instead of queueing
//!   unboundedly in handler threads.
//!
//! Every rejection is a named counter in [`GatewayStats`], folded into
//! the `/stats` JSON next to the platform's own admission counters.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-client token-bucket parameters.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Sustained requests per second each client IP may issue.
    pub per_client_rps: f64,
    /// Bucket capacity: how many requests a client may burst above the
    /// sustained rate before being limited.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            per_client_rps: 100.0,
            burst: 50.0,
        }
    }
}

/// One client's bucket: tokens remaining and the last refill instant.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Peer-IP-keyed token buckets behind one mutex (the map is touched once
/// per request; contention is negligible next to the socket syscalls on
/// the same path). The map is bounded: when it outgrows
/// [`RateLimiter::MAX_CLIENTS`], buckets idle long enough to have fully
/// refilled are dropped — forgetting a full bucket is behaviourally
/// invisible, so eviction can never turn an allowed request into a
/// rejected one.
pub struct RateLimiter {
    cfg: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// Bucket-map size that triggers a prune of fully-refilled buckets.
    pub const MAX_CLIENTS: usize = 4096;

    /// A limiter with the given parameters (rates are clamped positive).
    pub fn new(cfg: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            cfg: RateLimitConfig {
                per_client_rps: cfg.per_client_rps.max(f64::MIN_POSITIVE),
                burst: cfg.burst.max(1.0),
            },
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token from `peer`'s bucket; `false` means the client
    /// is over its rate and the request should be answered 429.
    pub fn allow(&self, peer: IpAddr) -> bool {
        self.allow_at(peer, Instant::now())
    }

    /// [`RateLimiter::allow`] with an injected clock (tests).
    pub fn allow_at(&self, peer: IpAddr, now: Instant) -> bool {
        let mut buckets = self.buckets.lock().expect("rate-limiter poisoned");
        if buckets.len() >= Self::MAX_CLIENTS && !buckets.contains_key(&peer) {
            let full_after = self.cfg.burst / self.cfg.per_client_rps;
            buckets.retain(|_, b| now.duration_since(b.last).as_secs_f64() < full_after);
        }
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: self.cfg.burst,
            last: now,
        });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.per_client_rps).min(self.cfg.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Clients currently tracked (tests/ops).
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().expect("rate-limiter poisoned").len()
    }
}

/// The global in-flight cap: a counting gate around handler execution.
/// `0` disables the cap.
pub struct InflightGate {
    limit: usize,
    current: AtomicUsize,
}

impl InflightGate {
    /// A gate admitting at most `limit` concurrent requests (0 = off).
    pub fn new(limit: usize) -> InflightGate {
        InflightGate {
            limit,
            current: AtomicUsize::new(0),
        }
    }

    /// Tries to enter the gate; `None` means the edge is saturated and
    /// the request should be answered 503. The returned guard leaves the
    /// gate on drop.
    pub fn try_enter(&self) -> Option<InflightPermit<'_>> {
        if self.limit == 0 {
            return Some(InflightPermit { gate: None });
        }
        let mut current = self.current.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return None;
            }
            match self.current.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightPermit { gate: Some(self) }),
                Err(observed) => current = observed,
            }
        }
    }

    /// Requests currently inside the gate.
    pub fn in_flight(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }
}

/// RAII permit for one in-flight request.
pub struct InflightPermit<'a> {
    gate: Option<&'a InflightGate>,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.current.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Lock-free gateway counters (relaxed increments; exactness is per
/// counter, the snapshot is point-in-time like the platform's).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Connections accepted off the listener.
    pub connections_accepted: AtomicU64,
    /// Accepted connections turned away because the bounded connection
    /// queue was full (answered 503 + close before any parse).
    pub connections_shed: AtomicU64,
    /// Connections fully closed by a handler (every accepted-and-queued
    /// connection ends here exactly once).
    pub connections_closed: AtomicU64,
    /// Requests successfully parsed off the wire.
    pub requests: AtomicU64,
    /// Malformed requests answered 400/413/431 and closed (parse-level;
    /// not counted in `requests`).
    pub parse_rejections: AtomicU64,
    /// I/O failures mid-connection (timeouts, resets, disconnects
    /// mid-response); the connection is dropped without a response.
    pub io_errors: AtomicU64,
    /// 200s served.
    pub ok: AtomicU64,
    /// 200s served straight from a connection's session cache.
    pub session_hits: AtomicU64,
    /// 429s from the per-client token bucket.
    pub rate_limited: AtomicU64,
    /// 503s from the global in-flight cap.
    pub inflight_shed: AtomicU64,
    /// 429s from platform admission control
    /// ([`ServiceError::Busy`](cp_service::ServiceError::Busy)) or a
    /// quota-starved crowd.
    pub upstream_busy: AtomicU64,
    /// 504s: the route deadline expired while the ticket was in flight.
    pub timeouts: AtomicU64,
    /// 404s: unknown city or unknown path.
    pub not_found: AtomicU64,
    /// 400s for well-formed HTTP with bad route parameters.
    pub bad_params: AtomicU64,
    /// 405s (non-GET methods).
    pub method_not_allowed: AtomicU64,
    /// 422s: the city exists but no candidate route connects the OD.
    pub no_route: AtomicU64,
    /// 500s (resolver panics and other upstream failures).
    pub server_errors: AtomicU64,
    /// 503s because the platform is shutting down or the edge is
    /// draining.
    pub unavailable: AtomicU64,
}

macro_rules! snap_fields {
    ($self:ident, $($field:ident),+ $(,)?) => {
        GatewayStatsSnapshot {
            $($field: $self.$field.load(Ordering::Relaxed)),+
        }
    };
}

impl GatewayStats {
    /// Fresh zeroed counters.
    pub fn new() -> GatewayStats {
        GatewayStats::default()
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> GatewayStatsSnapshot {
        snap_fields!(
            self,
            connections_accepted,
            connections_shed,
            connections_closed,
            requests,
            parse_rejections,
            io_errors,
            ok,
            session_hits,
            rate_limited,
            inflight_shed,
            upstream_busy,
            timeouts,
            not_found,
            bad_params,
            method_not_allowed,
            no_route,
            server_errors,
            unavailable,
        )
    }

    /// Bumps one counter by 1 (relaxed).
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`GatewayStats`]; field meanings match 1:1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct GatewayStatsSnapshot {
    pub connections_accepted: u64,
    pub connections_shed: u64,
    pub connections_closed: u64,
    pub requests: u64,
    pub parse_rejections: u64,
    pub io_errors: u64,
    pub ok: u64,
    pub session_hits: u64,
    pub rate_limited: u64,
    pub inflight_shed: u64,
    pub upstream_busy: u64,
    pub timeouts: u64,
    pub not_found: u64,
    pub bad_params: u64,
    pub method_not_allowed: u64,
    pub no_route: u64,
    pub server_errors: u64,
    pub unavailable: u64,
}

impl GatewayStatsSnapshot {
    /// Responses produced for parsed requests (every status class the
    /// edge emits, session hits included in `ok`).
    pub fn responses(&self) -> u64 {
        self.ok
            + self.rate_limited
            + self.inflight_shed
            + self.upstream_busy
            + self.timeouts
            + self.not_found
            + self.bad_params
            + self.method_not_allowed
            + self.no_route
            + self.server_errors
            + self.unavailable
    }

    /// The edge accounting invariant: every parsed request got exactly
    /// one response (requests whose response *write* failed are still
    /// classified — the write failure lands in `io_errors` on top), a
    /// session hit is a subset of `ok`, and connections never close more
    /// often than they were accepted and queued.
    pub fn is_consistent(&self) -> bool {
        self.responses() == self.requests
            && self.session_hits <= self.ok
            && self.connections_closed + self.connections_shed <= self.connections_accepted
    }

    /// JSON object body (no surrounding braces' newline conventions —
    /// the caller composes it into the `/stats` document).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections_accepted\": {}, \"connections_shed\": {}, ",
                "\"connections_closed\": {}, \"requests\": {}, ",
                "\"parse_rejections\": {}, \"io_errors\": {}, \"ok\": {}, ",
                "\"session_hits\": {}, \"rate_limited\": {}, ",
                "\"inflight_shed\": {}, \"upstream_busy\": {}, ",
                "\"timeouts\": {}, \"not_found\": {}, \"bad_params\": {}, ",
                "\"method_not_allowed\": {}, \"no_route\": {}, ",
                "\"server_errors\": {}, \"unavailable\": {}}}"
            ),
            self.connections_accepted,
            self.connections_shed,
            self.connections_closed,
            self.requests,
            self.parse_rejections,
            self.io_errors,
            self.ok,
            self.session_hits,
            self.rate_limited,
            self.inflight_shed,
            self.upstream_busy,
            self.timeouts,
            self.not_found,
            self.bad_params,
            self.method_not_allowed,
            self.no_route,
            self.server_errors,
            self.unavailable,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn token_bucket_allows_burst_then_limits_then_refills() {
        let limiter = RateLimiter::new(RateLimitConfig {
            per_client_rps: 10.0,
            burst: 3.0,
        });
        let t0 = Instant::now();
        assert!(limiter.allow_at(ip(1), t0));
        assert!(limiter.allow_at(ip(1), t0));
        assert!(limiter.allow_at(ip(1), t0));
        assert!(!limiter.allow_at(ip(1), t0), "burst spent");
        // Another client is unaffected.
        assert!(limiter.allow_at(ip(2), t0));
        // 100 ms refills one token at 10 rps.
        assert!(limiter.allow_at(ip(1), t0 + Duration::from_millis(100)));
        assert!(!limiter.allow_at(ip(1), t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_map_prunes_idle_clients_at_capacity() {
        let limiter = RateLimiter::new(RateLimitConfig {
            per_client_rps: 1000.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        {
            let mut buckets = limiter.buckets.lock().unwrap();
            for i in 0..RateLimiter::MAX_CLIENTS {
                buckets.insert(
                    IpAddr::V4(Ipv4Addr::from((i as u32) | 0x0b00_0000)),
                    Bucket {
                        tokens: 0.0,
                        last: t0,
                    },
                );
            }
        }
        // A new client arriving after every bucket has fully refilled
        // (1 ms at 1000 rps) triggers the prune and is admitted.
        assert!(limiter.allow_at(ip(9), t0 + Duration::from_secs(1)));
        assert!(limiter.tracked_clients() <= 2);
    }

    #[test]
    fn inflight_gate_caps_and_releases() {
        let gate = InflightGate::new(2);
        let a = gate.try_enter().expect("first");
        let _b = gate.try_enter().expect("second");
        assert!(gate.try_enter().is_none(), "cap reached");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        assert!(gate.try_enter().is_some(), "permit released");
    }

    #[test]
    fn zero_limit_disables_the_gate() {
        let gate = InflightGate::new(0);
        let permits: Vec<_> = (0..64).map(|_| gate.try_enter().unwrap()).collect();
        assert_eq!(gate.in_flight(), 0);
        drop(permits);
    }

    #[test]
    fn stats_snapshot_accounts() {
        let stats = GatewayStats::new();
        stats.inc(&stats.requests);
        stats.inc(&stats.requests);
        stats.inc(&stats.ok);
        stats.inc(&stats.upstream_busy);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.responses(), 2);
        assert!(snap.is_consistent());
        assert!(snap.to_json().contains("\"upstream_busy\": 1"));
    }
}
