//! The TCP edge: acceptor, bounded connection queue, handler pool,
//! graceful shutdown.
//!
//! One acceptor thread pulls connections off a non-blocking listener
//! and feeds a **bounded** queue; `handler_threads` resident workers
//! pop connections and speak HTTP/1.1 over them (keep-alive, per-socket
//! read/write deadlines, per-connection session cache). A full
//! connection queue answers `503 Connection: close` at accept time —
//! the edge sheds whole connections before parsing a byte of them,
//! mirroring the platform's own admission control one layer down.
//!
//! [`Gateway::shutdown`] is graceful and ordered for layering *above*
//! [`Platform::shutdown`]: stop accepting, let handlers finish the
//! request in flight on every live connection (responses go out with
//! `Connection: close`), drain connections still queued, join all
//! threads — only then should the caller drain the platform, so no
//! admitted HTTP request ever observes `ShuttingDown` from a healthy
//! platform underneath.

use crate::handlers::{handle, AppState};
use crate::http::{read_request, write_response, HttpError, HttpLimits, Response};
use crate::limits::{
    GatewayStats, GatewayStatsSnapshot, InflightGate, RateLimitConfig, RateLimiter,
};
use crate::session::SessionCache;
use cp_service::Platform;
use std::collections::VecDeque;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Edge configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` picks a free loopback port — the
    /// right default for tests and benchmarks; bind `0.0.0.0:port` to
    /// serve externally).
    pub addr: String,
    /// Resident handler threads (each owns one connection at a time).
    pub handler_threads: usize,
    /// Bounded accepted-connection queue; a full queue sheds new
    /// connections with an immediate `503` + close.
    pub conn_backlog: usize,
    /// Per-socket read deadline (covers both a stalled request head and
    /// an idle keep-alive gap).
    pub read_timeout: Duration,
    /// Per-socket write deadline.
    pub write_timeout: Duration,
    /// Most requests served over one keep-alive connection before the
    /// edge closes it (bounds per-connection state lifetime).
    pub keep_alive_requests: usize,
    /// How long `/route` waits on its platform ticket before `504`.
    pub route_deadline: Duration,
    /// Per-client token-bucket rate limiting (`None` = unlimited).
    pub rate_limit: Option<RateLimitConfig>,
    /// Global in-flight request cap (0 = uncapped).
    pub max_inflight: usize,
    /// Per-connection session-cache capacity (rendered `/route` bodies;
    /// 0 disables).
    pub session_cache: usize,
    /// HTTP parser hardening limits.
    pub http: HttpLimits,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            handler_threads: 4,
            conn_backlog: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive_requests: 1024,
            route_deadline: Duration::from_secs(2),
            rate_limit: None,
            max_inflight: 0,
            session_cache: 32,
            http: HttpLimits::default(),
        }
    }
}

/// The accepted-connection queue.
struct ConnQueue {
    conns: VecDeque<TcpStream>,
    /// Set at shutdown: handlers drain the queue, then exit.
    draining: bool,
}

/// Shared gateway state.
struct GwInner {
    state: AppState,
    cfg: GatewayConfig,
    queue: Mutex<ConnQueue>,
    not_empty: Condvar,
    /// Tells the acceptor to stop; set before `draining`.
    stop_accept: AtomicBool,
    /// Tells handlers to finish the current request and close (checked
    /// between keep-alive requests).
    draining: AtomicBool,
}

/// A running HTTP edge over one [`Platform`]. See the
/// [module docs](self) for the lifecycle.
pub struct Gateway {
    inner: Arc<GwInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds, spawns the acceptor and handler pool, and starts serving
    /// `platform` immediately.
    pub fn start(platform: Arc<Platform>, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(GwInner {
            state: AppState {
                platform,
                stats: GatewayStats::new(),
                limiter: cfg.rate_limit.map(RateLimiter::new),
                inflight: InflightGate::new(cfg.max_inflight),
                route_deadline: cfg.route_deadline,
            },
            cfg: GatewayConfig {
                handler_threads: cfg.handler_threads.max(1),
                conn_backlog: cfg.conn_backlog.max(1),
                ..cfg
            },
            queue: Mutex::new(ConnQueue {
                conns: VecDeque::new(),
                draining: false,
            }),
            not_empty: Condvar::new(),
            stop_accept: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("cp-gw-accept".into())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawning the gateway acceptor")
        };
        let handlers = (0..inner.cfg.handler_threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cp-gw-{i}"))
                    .spawn(move || handler_loop(&inner))
                    .expect("spawning a gateway handler")
            })
            .collect();
        Ok(Gateway {
            inner,
            addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (read the chosen port when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time edge counters.
    pub fn stats(&self) -> GatewayStatsSnapshot {
        self.inner.state.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, finish every in-flight
    /// request (`Connection: close` on the way out), serve-and-close
    /// connections still queued, join all threads. Call **before**
    /// [`Platform::shutdown`] — the platform must outlive the last
    /// gateway response. Idempotent via drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.stop_accept.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.draining.store(true, Ordering::Release);
        {
            let mut q = self.inner.queue.lock().expect("conn queue poisoned");
            q.draining = true;
            self.inner.not_empty.notify_all();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.addr)
            .field("handler_threads", &self.inner.cfg.handler_threads)
            .field("conn_backlog", &self.inner.cfg.conn_backlog)
            .finish()
    }
}

/// The acceptor: poll-accept off the non-blocking listener, enqueue
/// into the bounded queue, shed with an immediate 503 when full.
fn accept_loop(inner: &GwInner, listener: TcpListener) {
    let stats = &inner.state.stats;
    while !inner.stop_accept.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.inc(&stats.connections_accepted);
                let mut q = inner.queue.lock().expect("conn queue poisoned");
                if q.conns.len() >= inner.cfg.conn_backlog {
                    drop(q);
                    stats.inc(&stats.connections_shed);
                    shed_connection(stream, &inner.cfg);
                } else {
                    q.conns.push_back(stream);
                    drop(q);
                    inner.not_empty.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Nothing pending: nap briefly and re-check the stop
                // flag (std has no listener shutdown to interrupt a
                // blocking accept, so the edge polls).
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (per-connection errors like
                // ECONNABORTED); keep accepting.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Best-effort `503 Connection: close` for a connection shed at accept
/// time (a short write deadline keeps a black-holed peer from wedging
/// the acceptor).
fn shed_connection(mut stream: TcpStream, cfg: &GatewayConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout.min(Duration::from_millis(250))));
    let resp = Response::error(503, "overloaded", "connection queue full")
        .retry_after(1)
        .closing();
    let _ = write_response(&mut stream, &resp);
}

/// A resident handler: pop a connection, serve its keep-alive request
/// stream, repeat; exit once draining and the queue is empty.
fn handler_loop(inner: &GwInner) {
    loop {
        let conn = {
            let mut q = inner.queue.lock().expect("conn queue poisoned");
            loop {
                if let Some(conn) = q.conns.pop_front() {
                    break Some(conn);
                }
                if q.draining {
                    break None;
                }
                q = inner.not_empty.wait(q).expect("conn queue poisoned");
            }
        };
        let Some(conn) = conn else { break };
        serve_connection(inner, conn);
        inner.state.stats.inc(&inner.state.stats.connections_closed);
    }
}

/// Speaks HTTP/1.1 over one connection until close, error, the
/// keep-alive budget, or drain.
fn serve_connection(inner: &GwInner, mut stream: TcpStream) {
    let stats = &inner.state.stats;
    let peer = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    if stream
        .set_read_timeout(Some(inner.cfg.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(inner.cfg.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        stats.inc(&stats.io_errors);
        return;
    }
    let mut session = SessionCache::new(inner.cfg.session_cache);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    for _ in 0..inner.cfg.keep_alive_requests {
        let req = match read_request(&mut stream, &mut buf, &inner.cfg.http) {
            Ok(req) => req,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => {
                stats.inc(&stats.io_errors);
                return;
            }
            Err(parse_err) => {
                // Malformed wire bytes: answer once, close, never try
                // to re-synchronise inside a corrupted stream.
                stats.inc(&stats.parse_rejections);
                let resp = match parse_err {
                    HttpError::HeadersTooLarge => {
                        Response::error(431, "headers_too_large", "request head exceeds limits")
                    }
                    HttpError::BodyTooLarge => {
                        Response::error(413, "body_too_large", "request body exceeds limits")
                    }
                    HttpError::BadRequest(why) => Response::error(400, "bad_request", why),
                    HttpError::Closed | HttpError::Io(_) => unreachable!("handled above"),
                };
                let _ = write_response(&mut stream, &resp.closing());
                return;
            }
        };
        let draining = inner.draining.load(Ordering::Acquire);
        let mut resp = handle(&inner.state, &mut session, &req, peer);
        if draining || !req.keep_alive {
            resp.close = true;
        }
        if write_response(&mut stream, &resp).is_err() {
            // The client vanished mid-response (disconnect, reset,
            // write deadline): drop the connection; the handler and the
            // platform behind it are unaffected.
            stats.inc(&stats.io_errors);
            return;
        }
        if resp.close {
            return;
        }
    }
    // Keep-alive budget exhausted: close politely so the client re-dials.
}
