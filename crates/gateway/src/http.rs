//! Minimal, hardened HTTP/1.1 request parsing and response writing.
//!
//! No external dependencies and no allocation beyond the request's own
//! buffers. The parser is incremental over a persistent per-connection
//! buffer, so it is robust against the realities of a TCP byte stream:
//!
//! * **partial reads** — a request head split across any number of
//!   `read` calls is reassembled; a clean EOF *between* requests ends
//!   the connection ([`HttpError::Closed`]) while an EOF *inside* one is
//!   a protocol error;
//! * **oversized heads** — the head (request line + headers) is capped
//!   at [`HttpLimits::max_head_bytes`]; a client streaming an unbounded
//!   header is cut off with [`HttpError::HeadersTooLarge`] (431) before
//!   it can balloon memory, likewise header *count* and body length;
//! * **pipelined garbage** — bytes after one request's end stay in the
//!   buffer for the next parse; they are only ever interpreted as a
//!   fresh request head, so trailing junk fails fast with a 400 instead
//!   of being executed, and legitimate HTTP pipelining works.
//!
//! The response writer emits exact `Content-Length` framing (the only
//! framing this edge uses — no chunked encoding on either side).

use std::io::{self, Read, Write};

/// Parser hardening limits.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Most bytes a request head (request line + headers + blank line)
    /// may occupy before the parser rejects with
    /// [`HttpError::HeadersTooLarge`].
    pub max_head_bytes: usize,
    /// Most header lines per request.
    pub max_headers: usize,
    /// Most body bytes (`Content-Length`) per request.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Why a request could not be read. Each variant maps onto one wire
/// outcome (close silently, or answer with the named status and close).
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Clean EOF at a request boundary — the client finished; not an
    /// error, just the end of the connection.
    Closed,
    /// Read failed (timeout included); the connection is unusable.
    Io(io::ErrorKind),
    /// The bytes are not a well-formed HTTP/1.x request (→ 400).
    /// The payload names the first violated rule.
    BadRequest(&'static str),
    /// The head exceeded [`HttpLimits::max_head_bytes`] or
    /// [`HttpLimits::max_headers`] (→ 431).
    HeadersTooLarge,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`] (→ 413).
    BodyTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            HttpError::BadRequest(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path component of the target.
    pub path: String,
    /// Decoded `key=value` query parameters, in wire order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased, in wire order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open afterwards
    /// (HTTP/1.1 default, overridden by `Connection:` headers).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// The first query parameter named `key`, if any.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `reader`, consuming exactly its bytes from
/// `buf` (a persistent per-connection buffer: leftover bytes — the next
/// pipelined request — stay for the next call).
pub fn read_request(
    reader: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &HttpLimits,
) -> Result<HttpRequest, HttpError> {
    let head_end = loop {
        if let Some(end) = find_head_end(buf) {
            break end;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        fill(reader, buf, buf.is_empty())?;
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::HeadersTooLarge);
    }
    // The head is pure ASCII by grammar; reject other bytes outright.
    if !buf[..head_end].is_ascii() {
        return Err(HttpError::BadRequest("non-ASCII bytes in request head"));
    }
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let (method, target, version) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without a colon"))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("unparsable Content-Length"))?,
        None => 0,
    };
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        // This edge only speaks Content-Length framing; a request we
        // cannot frame correctly must not be half-interpreted.
        return Err(HttpError::BadRequest("Transfer-Encoding is not supported"));
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let total = head_end + content_length;
    while buf.len() < total {
        fill(reader, buf, false)?;
    }
    let body = buf[head_end..total].to_vec();
    buf.drain(..total);

    let keep_alive = match headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == Version::Http11,
    };
    let (path, query) = split_target(target)?;
    Ok(HttpRequest {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Http10,
    Http11,
}

/// `METHOD SP TARGET SP HTTP/1.x` — anything else is a 400.
fn parse_request_line(line: &str) -> Result<(&str, &str, Version), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(
            "request line is not `METHOD TARGET VERSION`",
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("target must be origin-form"));
    }
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };
    Ok((method, target, version))
}

/// Splits `/path?a=1&b=2` into the decoded path and decoded query pairs.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(path)?;
    let mut params = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok((path, params))
}

/// Percent-decodes a target component (`+` is a space in queries; an
/// incomplete or non-hex escape is a 400, not a silent passthrough).
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
                    return Err(HttpError::BadRequest("truncated percent escape"));
                };
                let byte = (hex_val(h).ok_or(HttpError::BadRequest("non-hex percent escape"))?
                    << 4)
                    | hex_val(l).ok_or(HttpError::BadRequest("non-hex percent escape"))?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("target is not UTF-8"))
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Index one past the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// One `read` into `buf`. EOF maps to [`HttpError::Closed`] at a request
/// boundary (`at_boundary`) and to a 400 mid-request.
fn fill(reader: &mut impl Read, buf: &mut Vec<u8>, at_boundary: bool) -> Result<(), HttpError> {
    let mut chunk = [0u8; 4096];
    match reader.read(&mut chunk) {
        Ok(0) => Err(if at_boundary {
            HttpError::Closed
        } else {
            HttpError::BadRequest("connection closed mid-request")
        }),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        // A blocking-socket read timeout surfaces as WouldBlock (unix)
        // or TimedOut (windows); both mean the peer stalled.
        Err(e) => Err(HttpError::Io(e.kind())),
    }
}

/// One response, written with exact `Content-Length` framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body (UTF-8; this edge only emits JSON and plain text).
    pub body: String,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Emitted as a `Retry-After: <seconds>` header when set (on 429s
    /// and overload 503s, so well-behaved clients can pace themselves).
    pub retry_after: Option<u32>,
    /// Close the connection after this response (`Connection: close`).
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: "application/json",
            retry_after: None,
            close: false,
        }
    }

    /// A JSON error envelope: `{"error": "<kind>", "detail": "<detail>"}`.
    pub fn error(status: u16, kind: &str, detail: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": \"{}\", \"detail\": \"{}\"}}",
                escape_json(kind),
                escape_json(detail)
            ),
        )
    }

    /// Marks the response as connection-closing.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Attaches a `Retry-After` hint.
    pub fn retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// The standard reason phrase for the statuses this edge emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises `resp` onto the wire.
pub fn write_response(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    if let Some(seconds) = resp.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    if resp.close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(resp.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<HttpRequest, HttpError> {
        let mut reader = io::Cursor::new(bytes.to_vec());
        let mut buf = Vec::new();
        read_request(&mut reader, &mut buf, &HttpLimits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /route?city=0&o=1&d=2&t=8.5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/route");
        assert_eq!(req.query_param("city"), Some("0"));
        assert_eq!(req.query_param("t"), Some("8.5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close_and_connection_headers_override() {
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for garbage in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 EXTRA\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"\x00\x01\x02\x03\r\n\r\n",
        ] {
            assert!(
                matches!(parse(garbage), Err(HttpError::BadRequest(_))),
                "{garbage:?} must be rejected"
            );
        }
    }

    #[test]
    fn partial_reads_reassemble_one_request() {
        // A reader yielding one byte per call: the head arrives in 40+
        // fragments and must still parse.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut reader = OneByte(b"GET /stats HTTP/1.1\r\n\r\n".to_vec(), 0);
        let mut buf = Vec::new();
        let req = read_request(&mut reader, &mut buf, &HttpLimits::default()).unwrap();
        assert_eq!(req.path, "/stats");
    }

    #[test]
    fn oversized_heads_are_cut_off() {
        let limits = HttpLimits {
            max_head_bytes: 256,
            ..HttpLimits::default()
        };
        let huge = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "a".repeat(10_000));
        let mut reader = io::Cursor::new(huge.into_bytes());
        let mut buf = Vec::new();
        assert_eq!(
            read_request(&mut reader, &mut buf, &limits),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let limits = HttpLimits {
            max_headers: 4,
            ..HttpLimits::default()
        };
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..8 {
            req.push_str(&format!("X-H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        let mut reader = io::Cursor::new(req.into_bytes());
        let mut buf = Vec::new();
        assert_eq!(
            read_request(&mut reader, &mut buf, &limits),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn oversized_bodies_are_rejected_by_declared_length() {
        let limits = HttpLimits {
            max_body_bytes: 8,
            ..HttpLimits::default()
        };
        let mut reader =
            io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n".to_vec());
        let mut buf = Vec::new();
        assert_eq!(
            read_request(&mut reader, &mut buf, &limits),
            Err(HttpError::BodyTooLarge)
        );
    }

    #[test]
    fn pipelined_requests_parse_in_order_and_garbage_after_fails() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\njunk\r\n\r\n".to_vec();
        let mut reader = io::Cursor::new(wire);
        let mut buf = Vec::new();
        let limits = HttpLimits::default();
        assert_eq!(
            read_request(&mut reader, &mut buf, &limits).unwrap().path,
            "/a"
        );
        assert_eq!(
            read_request(&mut reader, &mut buf, &limits).unwrap().path,
            "/b"
        );
        assert!(matches!(
            read_request(&mut reader, &mut buf, &limits),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed_and_mid_request_eof_is_bad() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
        assert!(matches!(parse(b"GET / HT"), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn body_bytes_are_consumed_exactly() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /y HTTP/1.1\r\n\r\n";
        let mut reader = io::Cursor::new(wire.to_vec());
        let mut buf = Vec::new();
        let limits = HttpLimits::default();
        let first = read_request(&mut reader, &mut buf, &limits).unwrap();
        assert_eq!(first.body, b"body");
        let second = read_request(&mut reader, &mut buf, &limits).unwrap();
        assert_eq!(second.path, "/y");
    }

    #[test]
    fn percent_decoding_is_strict() {
        let req = parse(b"GET /route?t=8%2E5&name=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("t"), Some("8.5"));
        assert_eq!(req.query_param("name"), Some("a b"));
        assert!(matches!(
            parse(b"GET /route?t=%zz HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /route?t=%2 HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_carry_exact_framing_and_hints() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{\"ok\": true}".into());
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));

        let mut out = Vec::new();
        let resp = Response::error(429, "busy", "queue full")
            .retry_after(1)
            .closing();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_bytes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
