//! System configuration: every threshold named in the paper, in one place.

use crate::error::CoreError;

/// All CrowdPlanner tunables. Field names follow the paper's notation
/// where one exists (η, η_time, η_dis, η_#q, α, β, k).
#[derive(Debug, Clone)]
pub struct Config {
    // ---- TR module ----
    /// Confidence threshold η: a candidate whose truth-derived confidence
    /// exceeds this is returned without crowdsourcing (paper §II-B1).
    pub eta_confidence: f64,
    /// Two routes "agree to a high degree" when their length-weighted edge
    /// Jaccard similarity reaches this value.
    pub agreement_similarity: f64,
    /// Fraction of sources that must agree for automatic acceptance.
    pub agreement_quorum: f64,
    /// Truth reuse: endpoints must lie within this radius (metres) of a
    /// stored truth's endpoints.
    pub reuse_radius: f64,
    /// Truth reuse: departure must be within this window (seconds,
    /// circular) of the stored truth's time tag.
    pub reuse_time_window: f64,

    // ---- Task generation ----
    /// Cap on enumerated landmark sets in the selection algorithms (guards
    /// the exponential worst case; the paper notes brute force is
    /// "impractical").
    pub selection_budget: usize,

    // ---- Worker selection ----
    /// η_dis: knowledge radius in metres. Landmarks farther than this from
    /// all of a worker's anchor places contribute no profile familiarity,
    /// and knowledge accumulation integrates over this radius.
    pub eta_dis: f64,
    /// α: smoothing between profile familiarity and history familiarity.
    pub alpha: f64,
    /// β < 1: the gain of a wrong answer in the history term.
    pub beta: f64,
    /// η_time: minimum probability of answering before the deadline.
    pub eta_time: f64,
    /// η_#q: maximum outstanding tasks per worker.
    pub eta_quota: u32,
    /// k: number of workers assigned per task.
    pub k_workers: usize,
    /// Latent dimensionality of the PMF factorisation.
    pub pmf_dims: usize,
    /// Default response rate λ assumed for workers with no history
    /// (answers per second).
    pub default_lambda: f64,
    /// Task deadline in seconds (user-specified response time).
    pub task_deadline: f64,

    // ---- Early stop ----
    /// Stop collecting answers when the leading route's Laplace-smoothed
    /// vote share reaches this confidence.
    pub eta_stop: f64,
    /// Minimum answers before early stop may trigger.
    pub min_answers: usize,
    /// Minimum Laplace-smoothed vote share the final crowd leader must
    /// reach to override the machine's best guess; scattered votes below
    /// this floor fall back (the crowd "could not verify").
    pub verdict_floor: f64,

    // ---- Rewarding ----
    /// Base reward points per answered question.
    pub reward_per_question: f64,
    /// Bonus multiplier for answers agreeing with the final verdict.
    pub reward_quality_bonus: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            eta_confidence: 0.8,
            agreement_similarity: 0.8,
            agreement_quorum: 0.6,
            reuse_radius: 300.0,
            reuse_time_window: 2.0 * 3600.0,
            selection_budget: 200_000,
            eta_dis: 1500.0,
            alpha: 0.6,
            beta: 0.3,
            eta_time: 0.5,
            eta_quota: 5,
            k_workers: 9,
            pmf_dims: 8,
            default_lambda: 1.0 / 1800.0,
            task_deadline: 5400.0,
            eta_stop: 0.7,
            min_answers: 3,
            verdict_floor: 0.45,
            reward_per_question: 1.0,
            reward_quality_bonus: 1.0,
        }
    }
}

impl Config {
    /// Validates value ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        let unit = |v: f64| (0.0..=1.0).contains(&v);
        if !unit(self.eta_confidence) {
            return Err(CoreError::InvalidConfig("eta_confidence must be in [0,1]"));
        }
        if !unit(self.agreement_similarity) || !unit(self.agreement_quorum) {
            return Err(CoreError::InvalidConfig(
                "agreement params must be in [0,1]",
            ));
        }
        if !unit(self.alpha) {
            return Err(CoreError::InvalidConfig("alpha must be in [0,1]"));
        }
        if !(0.0..1.0).contains(&self.beta) {
            return Err(CoreError::InvalidConfig("beta must be in [0,1)"));
        }
        if !unit(self.eta_time) || !unit(self.eta_stop) || !unit(self.verdict_floor) {
            return Err(CoreError::InvalidConfig(
                "eta_time/eta_stop/verdict_floor must be in [0,1]",
            ));
        }
        if self.eta_dis <= 0.0 || self.reuse_radius < 0.0 {
            return Err(CoreError::InvalidConfig("distances must be positive"));
        }
        if self.k_workers == 0 {
            return Err(CoreError::InvalidConfig("k_workers must be >= 1"));
        }
        if self.pmf_dims == 0 {
            return Err(CoreError::InvalidConfig("pmf_dims must be >= 1"));
        }
        if self.default_lambda <= 0.0 || self.task_deadline <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "rates and deadlines must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Config::default().validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        let mut c = Config::default();
        c.eta_confidence = 1.5;
        assert!(c.validate().is_err());
        let mut c = Config::default();
        c.beta = 1.0;
        assert!(c.validate().is_err());
        let mut c = Config::default();
        c.k_workers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::default();
        c.eta_dis = 0.0;
        assert!(c.validate().is_err());
        let mut c = Config::default();
        c.pmf_dims = 0;
        assert!(c.validate().is_err());
    }
}
