//! Landmark-based routes (paper Definition 3) and candidate sets.

use cp_roadnet::{LandmarkId, LandmarkSet, Path, RoadGraph};
use cp_traj::{calibrate_path, CalibrationParams};

/// A route rewritten as a finite sequence of landmarks,
/// `R̄ = {l1, l2, …, ln}` (paper Definition 3). Keeps both the travel-order
/// sequence and a sorted membership index for set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LandmarkRoute {
    sequence: Vec<LandmarkId>,
    sorted: Vec<LandmarkId>,
}

impl LandmarkRoute {
    /// Builds from a travel-ordered landmark sequence (duplicates removed,
    /// first occurrence kept).
    pub fn new(sequence: Vec<LandmarkId>) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(sequence.len());
        let sequence: Vec<LandmarkId> = sequence.into_iter().filter(|l| seen.insert(*l)).collect();
        let mut sorted = sequence.clone();
        sorted.sort_unstable();
        LandmarkRoute { sequence, sorted }
    }

    /// Calibrates a road path into a landmark route (paper's anchor-based
    /// calibration step).
    pub fn from_path(
        graph: &RoadGraph,
        landmarks: &LandmarkSet,
        path: &Path,
        params: &CalibrationParams,
    ) -> Self {
        LandmarkRoute::new(calibrate_path(graph, landmarks, path, params))
    }

    /// Travel-ordered landmark sequence.
    pub fn sequence(&self) -> &[LandmarkId] {
        &self.sequence
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the route passes no landmarks.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Whether the route passes `l`.
    pub fn contains(&self, l: LandmarkId) -> bool {
        self.sorted.binary_search(&l).is_ok()
    }

    /// Whether two landmark routes have the same landmark *set*
    /// (sequence order ignored) — the condition under which no landmark
    /// set can discriminate them (Definition 4).
    pub fn same_landmark_set(&self, other: &LandmarkRoute) -> bool {
        self.sorted == other.sorted
    }

    /// Sorted landmark membership.
    pub fn sorted_landmarks(&self) -> &[LandmarkId] {
        &self.sorted
    }
}

/// Checks Definition 4: `selection` is discriminative to `routes` if every
/// pair of routes has different intersections with the selection.
pub fn is_discriminative(routes: &[LandmarkRoute], selection: &[LandmarkId]) -> bool {
    let project = |r: &LandmarkRoute| -> Vec<LandmarkId> {
        let mut v: Vec<LandmarkId> = selection
            .iter()
            .copied()
            .filter(|&l| r.contains(l))
            .collect();
        v.sort_unstable();
        v
    };
    let projections: Vec<Vec<LandmarkId>> = routes.iter().map(project).collect();
    for i in 0..projections.len() {
        for j in i + 1..projections.len() {
            if projections[i] == projections[j] {
                return false;
            }
        }
    }
    true
}

/// Checks Definition 5: `selection` is *simplest* discriminative if it is
/// discriminative and removing any single landmark breaks that.
pub fn is_simplest_discriminative(routes: &[LandmarkRoute], selection: &[LandmarkId]) -> bool {
    if !is_discriminative(routes, selection) {
        return false;
    }
    for skip in 0..selection.len() {
        let reduced: Vec<LandmarkId> = selection
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, &l)| l)
            .collect();
        if is_discriminative(routes, &reduced) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn paper_example() -> Vec<LandmarkRoute> {
        // R1 = {l1, l2, l3}, R2 = {l1, l2, l4} from paper §II-A.
        vec![
            LandmarkRoute::new(vec![lm(1), lm(2), lm(3)]),
            LandmarkRoute::new(vec![lm(1), lm(2), lm(4)]),
        ]
    }

    #[test]
    fn paper_definition_examples_hold() {
        let routes = paper_example();
        // L1 = {l3, l4} is discriminative.
        assert!(is_discriminative(&routes, &[lm(3), lm(4)]));
        // L2 = {l1, l2} is not.
        assert!(!is_discriminative(&routes, &[lm(1), lm(2)]));
        // L1 is not simplest ({l3} alone suffices).
        assert!(!is_simplest_discriminative(&routes, &[lm(3), lm(4)]));
        // L3 = {l3} and L4 = {l4} are simplest discriminative.
        assert!(is_simplest_discriminative(&routes, &[lm(3)]));
        assert!(is_simplest_discriminative(&routes, &[lm(4)]));
    }

    #[test]
    fn duplicates_are_removed_on_construction() {
        let r = LandmarkRoute::new(vec![lm(1), lm(2), lm(1), lm(3), lm(2)]);
        assert_eq!(r.sequence(), &[lm(1), lm(2), lm(3)]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn contains_uses_set_membership() {
        let r = LandmarkRoute::new(vec![lm(5), lm(1), lm(9)]);
        assert!(r.contains(lm(9)));
        assert!(!r.contains(lm(2)));
        assert!(!r.is_empty());
    }

    #[test]
    fn same_landmark_set_ignores_order() {
        let a = LandmarkRoute::new(vec![lm(1), lm(2), lm(3)]);
        let b = LandmarkRoute::new(vec![lm(3), lm(1), lm(2)]);
        let c = LandmarkRoute::new(vec![lm(1), lm(2)]);
        assert!(a.same_landmark_set(&b));
        assert!(!a.same_landmark_set(&c));
    }

    #[test]
    fn empty_selection_never_discriminates_multiple_routes() {
        let routes = paper_example();
        assert!(!is_discriminative(&routes, &[]));
        // …but trivially discriminates a single route.
        assert!(is_discriminative(&routes[..1], &[]));
    }

    #[test]
    fn identical_routes_cannot_be_discriminated() {
        let routes = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(2), lm(1)]),
        ];
        assert!(!is_discriminative(&routes, &[lm(1), lm(2)]));
    }

    #[test]
    fn three_route_discrimination() {
        let routes = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1), lm(3)]),
            LandmarkRoute::new(vec![lm(2), lm(3)]),
        ];
        // {l1, l2}: projections {1,2}, {1}, {2} — all different.
        assert!(is_discriminative(&routes, &[lm(1), lm(2)]));
        // {l1}: projections {1},{1},{} — routes 0,1 collide.
        assert!(!is_discriminative(&routes, &[lm(1)]));
        assert!(is_simplest_discriminative(&routes, &[lm(1), lm(2)]));
    }
}
