//! Early-stop aggregation of crowd answers (paper §II-B2, "early stop
//! component": "when partial feedbacks have been collected, this component
//! will evaluate the confidence of the answer and return the result … as
//! early as possible when the confidence is high enough").
//!
//! Workers vote for candidate routes (each worker's answer walk through
//! the question tree ends at a candidate, or at a dead end = abstention).
//! After every vote the aggregator computes the Laplace-smoothed posterior
//! share of the leading candidate; once it clears η_stop — and at least
//! `min_answers` votes have arrived — collection stops.

use crate::config::Config;

/// Sequential vote aggregator over `n` candidate routes. Votes may carry
/// weights — the orchestrator weights each worker's vote by their
/// knowledge-based preference score, so well-informed workers count more
/// when the early-stop component "evaluates the confidence of the answer".
#[derive(Debug, Clone)]
pub struct EarlyStop {
    votes: Vec<f64>,
    answers: u32,
}

/// The aggregator's verdict after a vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopDecision {
    /// Keep collecting answers.
    Continue,
    /// Confidence reached: stop with the given winner and confidence.
    Stop {
        /// Winning candidate index.
        winner: usize,
        /// Laplace-smoothed vote share of the winner.
        confidence: f64,
    },
}

impl EarlyStop {
    /// Creates an aggregator for `n` candidates.
    pub fn new(n: usize) -> Self {
        EarlyStop {
            votes: vec![0.0; n],
            answers: 0,
        }
    }

    /// Records a unit-weight vote for candidate `route` (or an abstention
    /// for `None`).
    pub fn record(&mut self, route: Option<usize>) {
        self.record_weighted(route, 1.0);
    }

    /// Records a weighted vote. Abstentions count toward the answer total
    /// but carry no vote mass.
    pub fn record_weighted(&mut self, route: Option<usize>, weight: f64) {
        debug_assert!(weight >= 0.0, "vote weights are non-negative");
        self.answers += 1;
        if let Some(r) = route {
            self.votes[r] += weight.max(0.0);
        }
    }

    /// Total recorded answers (including abstentions).
    pub fn total_answers(&self) -> u32 {
        self.answers
    }

    /// Laplace-smoothed share of candidate `i`:
    /// `(votes_i + 1) / (Σ votes + n)`.
    pub fn share(&self, i: usize) -> f64 {
        let total: f64 = self.votes.iter().sum();
        (self.votes[i] + 1.0) / (total + self.votes.len() as f64)
    }

    /// The current leader and its share. Ties break toward the lower index.
    pub fn leader(&self) -> Option<(usize, f64)> {
        if self.votes.is_empty() {
            return None;
        }
        let best = self
            .votes
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.0.cmp(&a.0))
            })
            .map(|(i, _)| i)?;
        Some((best, self.share(best)))
    }

    /// Whether collection should stop.
    pub fn decision(&self, cfg: &Config) -> StopDecision {
        if (self.total_answers() as usize) < cfg.min_answers {
            return StopDecision::Continue;
        }
        match self.leader() {
            Some((winner, confidence)) if confidence >= cfg.eta_stop => {
                StopDecision::Stop { winner, confidence }
            }
            _ => StopDecision::Continue,
        }
    }

    /// Final verdict when answers are exhausted: the leader regardless of
    /// threshold (`None` when every worker abstained or no candidates).
    pub fn final_verdict(&self) -> Option<(usize, f64)> {
        if self.votes.iter().all(|&v| v == 0.0) {
            return None;
        }
        self.leader()
    }

    /// Accumulated vote mass per candidate.
    pub fn votes(&self) -> &[f64] {
        &self.votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            eta_stop: 0.7,
            min_answers: 3,
            ..Config::default()
        }
    }

    #[test]
    fn no_stop_before_min_answers() {
        let mut es = EarlyStop::new(3);
        es.record(Some(0));
        es.record(Some(0));
        assert_eq!(es.decision(&cfg()), StopDecision::Continue);
    }

    #[test]
    fn unanimous_votes_stop_early() {
        let mut es = EarlyStop::new(3);
        for _ in 0..4 {
            es.record(Some(1));
        }
        match es.decision(&cfg()) {
            StopDecision::Stop { winner, confidence } => {
                assert_eq!(winner, 1);
                // (4+1)/(4+3) = 5/7 ≈ 0.714 ≥ 0.7
                assert!((confidence - 5.0 / 7.0).abs() < 1e-12);
            }
            StopDecision::Continue => panic!("should stop"),
        }
    }

    #[test]
    fn split_votes_do_not_stop() {
        let mut es = EarlyStop::new(2);
        es.record(Some(0));
        es.record(Some(1));
        es.record(Some(0));
        es.record(Some(1));
        assert_eq!(es.decision(&cfg()), StopDecision::Continue);
        // But the final verdict still names a leader (index tie-break).
        let (w, _) = es.final_verdict().unwrap();
        assert_eq!(w, 0);
    }

    #[test]
    fn abstentions_count_toward_min_answers_but_not_shares() {
        let mut es = EarlyStop::new(2);
        es.record(None);
        es.record(None);
        es.record(Some(0));
        assert_eq!(es.total_answers(), 3);
        // share(0) = (1+1)/(1+2) = 2/3 < 0.7 → continue
        assert_eq!(es.decision(&cfg()), StopDecision::Continue);
        es.record(Some(0));
        // share(0) = 3/4 = 0.75 ≥ 0.7 → stop
        assert!(matches!(
            es.decision(&cfg()),
            StopDecision::Stop { winner: 0, .. }
        ));
    }

    #[test]
    fn all_abstentions_yield_no_verdict() {
        let mut es = EarlyStop::new(2);
        es.record(None);
        es.record(None);
        es.record(None);
        assert_eq!(es.decision(&cfg()), StopDecision::Continue);
        assert!(es.final_verdict().is_none());
    }

    #[test]
    fn shares_sum_to_one() {
        let mut es = EarlyStop::new(4);
        es.record(Some(0));
        es.record(Some(2));
        es.record(Some(2));
        let sum: f64 = (0..4).map(|i| es.share(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(es.votes(), &[1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn higher_threshold_needs_more_votes() {
        let strict = Config {
            eta_stop: 0.9,
            min_answers: 3,
            ..Config::default()
        };
        let mut es = EarlyStop::new(2);
        for _ in 0..5 {
            es.record(Some(0));
        }
        // (5+1)/(5+2) = 6/7 ≈ 0.857 < 0.9 → continue under strict config.
        assert_eq!(es.decision(&strict), StopDecision::Continue);
        for _ in 0..10 {
            es.record(Some(0));
        }
        // (15+1)/(15+2) ≈ 0.941 → stop.
        assert!(matches!(es.decision(&strict), StopDecision::Stop { .. }));
    }
}
