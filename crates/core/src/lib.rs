//! # cp-core — the CrowdPlanner system
//!
//! Reproduction of the core contribution of *CrowdPlanner: A Crowd-Based
//! Route Recommendation System* (Han Su et al., ICDE 2014):
//!
//! * [`route`] — landmark-based routes and the discriminative-set
//!   definitions (Defs. 1–5);
//! * [`taskgen`] — task generation (§III): landmark significance
//!   consumption, the selection optimisation with BruteForce / ILS /
//!   GreedySelect, and ID3 question ordering;
//! * [`worker_selection`] — worker selection (§IV): familiarity scores,
//!   PMF densification, Gaussian knowledge accumulation, response-time
//!   filtering, rated-voting top-k;
//! * [`truth`] — the verified-truth store and reuse;
//! * [`evaluation`] — machine route evaluation (agreement + confidence);
//! * [`early_stop`] — partial-feedback early stopping;
//! * [`reward`] — workload/quality rewards;
//! * [`system`] — the control-logic orchestrator.

#![warn(missing_docs)]

pub mod config;
pub mod early_stop;
pub mod error;
pub mod evaluation;
pub mod hashing;
pub mod reliability;
pub mod reward;
pub mod route;
pub mod system;
pub mod taskgen;
pub mod truth;
pub mod worker_selection;

pub use config::Config;
pub use early_stop::{EarlyStop, StopDecision};
pub use error::CoreError;
pub use evaluation::{evaluate_candidates, Evaluation};
pub use hashing::{FxBuildHasher, FxHashMap, FxHasher};
pub use reliability::SourceReliability;
pub use reward::{reward_for, Participation};
pub use route::{is_discriminative, is_simplest_discriminative, LandmarkRoute};
pub use system::{CrowdPlanner, Recommendation, Resolution, SystemStats};
pub use taskgen::{
    brute_force_select, build_question_tree, generate_task, greedy_select, ils_select,
    QuestionNode, QuestionTree, Selection, SelectionAlgorithm, SelectionProblem, Task,
};
pub use truth::{grid_cell, TruthEntry, TruthGrid, TruthStore, DEFAULT_BUCKET_S, DEFAULT_CELL_M};
pub use worker_selection::{
    accumulate_scores, familiarity_score, observed_matrix, profile_familiarity, select_workers,
    DenseMatrix, KnowledgeModel, PmfModel, PmfParams, SparseObservations,
};
