//! Question ordering with ID3 (paper §III-C).
//!
//! The selected landmarks form the question library; presenting them in a
//! fixed order wastes effort, so the paper builds a binary decision tree:
//! the next question depends on the previous answer, and each node asks
//! the question with the largest *information strength*
//!
//! ```text
//! IS(l) = l.s · [H(R̄) − |R̄⁺|/|R̄| · H(R̄⁺) − |R̄⁻|/|R̄| · H(R̄⁻)]
//! ```
//!
//! i.e. the landmark's significance times the information gain of
//! splitting the surviving route set by "does your route pass l?". The
//! recursion (the ID3 algorithm, Quinlan 1986) bottoms out when one route
//! survives.

use crate::route::LandmarkRoute;
use cp_roadnet::LandmarkId;

/// A node of the question tree.
#[derive(Debug, Clone, PartialEq)]
pub enum QuestionNode {
    /// Exactly one candidate survives.
    Leaf {
        /// Index of the surviving route in the candidate set.
        route: usize,
    },
    /// Ask "does your preferred route pass this landmark?".
    Ask {
        /// The landmark being asked about.
        landmark: LandmarkId,
        /// Subtree if the worker answers *yes*.
        yes: Box<QuestionNode>,
        /// Subtree if the worker answers *no*.
        no: Box<QuestionNode>,
    },
    /// The answers so far are inconsistent with every candidate (possible
    /// when a worker's true best route is outside the candidate set).
    Dead,
}

/// A built question tree plus bookkeeping for expected-cost analysis.
#[derive(Debug, Clone)]
pub struct QuestionTree {
    /// Root node.
    pub root: QuestionNode,
    /// Number of candidate routes the tree separates.
    pub route_count: usize,
}

/// Empirical entropy of a discrete distribution given by non-negative
/// weights (not necessarily normalised). `H = −Σ p log₂ p`.
pub fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Information strength of asking `landmark` against the surviving routes
/// `subset` (indices into `routes`) with per-route weights.
pub fn information_strength(
    routes: &[LandmarkRoute],
    weights: &[f64],
    subset: &[usize],
    landmark: LandmarkId,
    significance: f64,
) -> f64 {
    let w_all: Vec<f64> = subset.iter().map(|&i| weights[i]).collect();
    let (mut yes, mut no) = (Vec::new(), Vec::new());
    for &i in subset {
        if routes[i].contains(landmark) {
            yes.push(weights[i]);
        } else {
            no.push(weights[i]);
        }
    }
    let total: f64 = w_all.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let wy: f64 = yes.iter().sum();
    let wn: f64 = no.iter().sum();
    let gain = entropy(&w_all) - (wy / total) * entropy(&yes) - (wn / total) * entropy(&no);
    significance * gain
}

/// Builds the ID3 question tree for `routes` using the selected
/// `questions` (landmark, significance) pairs. `weights` are per-route
/// prior weights (confidence scores; pass uniform weights when unknown).
///
/// Requires the questions to be discriminative to the routes; otherwise
/// some leaf cannot isolate a single route and the subtree degenerates to
/// the lowest-index surviving route (deterministic, documented behaviour
/// asserted in tests).
pub fn build_question_tree(
    routes: &[LandmarkRoute],
    weights: &[f64],
    questions: &[(LandmarkId, f64)],
) -> QuestionTree {
    assert_eq!(routes.len(), weights.len(), "one weight per route");
    let all: Vec<usize> = (0..routes.len()).collect();
    let root = build_node(routes, weights, &all, questions);
    QuestionTree {
        root,
        route_count: routes.len(),
    }
}

fn build_node(
    routes: &[LandmarkRoute],
    weights: &[f64],
    subset: &[usize],
    remaining: &[(LandmarkId, f64)],
) -> QuestionNode {
    match subset.len() {
        0 => return QuestionNode::Dead,
        1 => return QuestionNode::Leaf { route: subset[0] },
        _ => {}
    }
    // Pick the splitting question with maximum information strength; only
    // questions that actually split the subset are eligible (zero-split
    // questions have zero gain and cause infinite recursion).
    let mut best: Option<(f64, usize)> = None;
    for (qi, &(l, s)) in remaining.iter().enumerate() {
        let yes_count = subset.iter().filter(|&&i| routes[i].contains(l)).count();
        if yes_count == 0 || yes_count == subset.len() {
            continue;
        }
        let is = information_strength(routes, weights, subset, l, s);
        if best.is_none_or(|(bv, _)| is > bv) {
            best = Some((is, qi));
        }
    }
    let Some((_, qi)) = best else {
        // Not discriminative w.r.t. this subset: degenerate leaf.
        return QuestionNode::Leaf { route: subset[0] };
    };
    let (l, _) = remaining[qi];
    let rest: Vec<(LandmarkId, f64)> = remaining
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != qi)
        .map(|(_, &q)| q)
        .collect();
    let yes_subset: Vec<usize> = subset
        .iter()
        .copied()
        .filter(|&i| routes[i].contains(l))
        .collect();
    let no_subset: Vec<usize> = subset
        .iter()
        .copied()
        .filter(|&i| !routes[i].contains(l))
        .collect();
    QuestionNode::Ask {
        landmark: l,
        yes: Box::new(build_node(routes, weights, &yes_subset, &rest)),
        no: Box::new(build_node(routes, weights, &no_subset, &rest)),
    }
}

impl QuestionTree {
    /// Expected number of questions to reach a leaf, weighting each route
    /// leaf by the route weights (uniform prior over candidate routes when
    /// all weights are equal).
    pub fn expected_questions(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        walk(&self.root, 0, weights, &mut acc);
        acc / total
    }

    /// Maximum depth (worst-case questions asked).
    pub fn max_depth(&self) -> usize {
        fn depth(n: &QuestionNode) -> usize {
            match n {
                QuestionNode::Ask { yes, no, .. } => 1 + depth(yes).max(depth(no)),
                _ => 0,
            }
        }
        depth(&self.root)
    }

    /// Routes the answer sequence produced by `answer(l)` down the tree,
    /// returning the surviving candidate index, the landmarks asked, and
    /// whether the walk hit a dead end.
    pub fn walk_answers(
        &self,
        mut answer: impl FnMut(LandmarkId) -> bool,
    ) -> (Option<usize>, Vec<LandmarkId>) {
        let mut node = &self.root;
        let mut asked = Vec::new();
        loop {
            match node {
                QuestionNode::Leaf { route } => return (Some(*route), asked),
                QuestionNode::Dead => return (None, asked),
                QuestionNode::Ask { landmark, yes, no } => {
                    asked.push(*landmark);
                    node = if answer(*landmark) { yes } else { no };
                }
            }
        }
    }

    /// Collects every landmark asked anywhere in the tree.
    pub fn all_questions(&self) -> Vec<LandmarkId> {
        let mut out = Vec::new();
        fn collect(n: &QuestionNode, out: &mut Vec<LandmarkId>) {
            if let QuestionNode::Ask { landmark, yes, no } = n {
                out.push(*landmark);
                collect(yes, out);
                collect(no, out);
            }
        }
        collect(&self.root, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn walk(node: &QuestionNode, depth: usize, weights: &[f64], acc: &mut f64) {
    match node {
        QuestionNode::Leaf { route } => *acc += depth as f64 * weights[*route],
        QuestionNode::Dead => {}
        QuestionNode::Ask { yes, no, .. } => {
            walk(yes, depth + 1, weights, acc);
            walk(no, depth + 1, weights, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn routes() -> Vec<LandmarkRoute> {
        vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1), lm(3)]),
            LandmarkRoute::new(vec![lm(2), lm(3)]),
            LandmarkRoute::new(vec![lm(4)]),
        ]
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[1.0]), 0.0);
        assert!((entropy(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        // Skewed distribution has lower entropy.
        assert!(entropy(&[0.9, 0.1]) < 1.0);
    }

    #[test]
    fn information_strength_scales_with_significance() {
        let rs = routes();
        let w = vec![1.0; 4];
        let all = vec![0, 1, 2, 3];
        let is1 = information_strength(&rs, &w, &all, lm(1), 0.5);
        let is2 = information_strength(&rs, &w, &all, lm(1), 1.0);
        assert!((is2 - 2.0 * is1).abs() < 1e-12);
    }

    #[test]
    fn non_splitting_question_has_zero_strength() {
        let rs = routes();
        let w = vec![1.0; 4];
        // lm(9) is on no route: no split, zero gain.
        let is = information_strength(&rs, &w, &[0, 1, 2, 3], lm(9), 1.0);
        assert_eq!(is, 0.0);
    }

    #[test]
    fn tree_isolates_every_route() {
        let rs = routes();
        let w = vec![1.0; 4];
        let qs = vec![(lm(1), 0.9), (lm(2), 0.8), (lm(3), 0.7), (lm(4), 0.6)];
        let tree = build_question_tree(&rs, &w, &qs);
        // Walking with each route's true membership must land on that route.
        for (i, r) in rs.iter().enumerate() {
            let (got, asked) = tree.walk_answers(|l| r.contains(l));
            assert_eq!(got, Some(i), "route {i}");
            assert!(!asked.is_empty());
            assert!(asked.len() <= qs.len());
        }
    }

    #[test]
    fn expected_questions_at_most_library_size_and_at_least_log() {
        let rs = routes();
        let w = vec![1.0; 4];
        let qs = vec![(lm(1), 0.9), (lm(2), 0.8), (lm(3), 0.7), (lm(4), 0.6)];
        let tree = build_question_tree(&rs, &w, &qs);
        let e = tree.expected_questions(&w);
        assert!(e <= 4.0);
        assert!(
            e >= 2.0 - 1e-9,
            "4 routes need >= log2(4) = 2 expected questions"
        );
        assert!(tree.max_depth() <= 4);
    }

    #[test]
    fn id3_beats_worst_fixed_order_on_average() {
        // With a route set where one landmark splits evenly and another
        // barely splits, ID3 must prefer the even split (higher gain).
        let rs = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1), lm(3)]),
            LandmarkRoute::new(vec![lm(5), lm(2)]),
            LandmarkRoute::new(vec![lm(5), lm(3)]),
        ];
        let w = vec![1.0; 4];
        // lm(1) splits 2/2; lm(4) splits 0/4 (useless); equal significance.
        let qs = vec![(lm(1), 0.5), (lm(2), 0.5), (lm(3), 0.5), (lm(4), 0.5)];
        let tree = build_question_tree(&rs, &w, &qs);
        if let QuestionNode::Ask { landmark, .. } = &tree.root {
            assert_ne!(*landmark, lm(4), "useless question must not be root");
        } else {
            panic!("root must ask");
        }
        // Perfect binary split over 4 routes: expected exactly 2 questions.
        assert!((tree.expected_questions(&w) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dead_end_when_answers_match_no_route() {
        let rs = vec![
            LandmarkRoute::new(vec![lm(1)]),
            LandmarkRoute::new(vec![lm(2)]),
        ];
        let w = vec![1.0; 2];
        let qs = vec![(lm(1), 0.9), (lm(2), 0.8)];
        let tree = build_question_tree(&rs, &w, &qs);
        // Answer "no" to everything: matches neither route fully… the tree
        // asks lm(1): no → subset {route 1} → leaf. Only one question is
        // asked, so no dead end here; force one with contradictory answers
        // on a 3-route instance.
        let (got, _) = tree.walk_answers(|_| false);
        assert!(got.is_some());

        let rs3 = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1)]),
            LandmarkRoute::new(vec![lm(3)]),
        ];
        let w3 = vec![1.0; 3];
        let qs3 = vec![(lm(1), 0.9), (lm(2), 0.8), (lm(3), 0.7)];
        let tree3 = build_question_tree(&rs3, &w3, &qs3);
        // yes to lm(1) then no to lm(2)… leads to route 1 (a leaf), fine.
        // The Dead variant arises with weights of zero subsets — simulate by
        // answering yes to everything: routes containing l1 = {0,1}, then
        // l2 yes → {0} leaf. Still no dead end; Dead requires an empty
        // branch, which ID3 never creates (it only splits non-trivially).
        // Assert the invariant instead: no Dead nodes in ID3 output.
        fn has_dead(n: &QuestionNode) -> bool {
            match n {
                QuestionNode::Dead => true,
                QuestionNode::Ask { yes, no, .. } => has_dead(yes) || has_dead(no),
                _ => false,
            }
        }
        assert!(!has_dead(&tree3.root));
    }

    #[test]
    fn weighted_prior_shortens_likely_route_paths() {
        // When one route is much more likely a priori, ID3's gain-based
        // split tends to isolate it early, lowering the *weighted* expected
        // question count versus uniform weights.
        let rs = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1), lm(3)]),
            LandmarkRoute::new(vec![lm(4), lm(2)]),
            LandmarkRoute::new(vec![lm(4), lm(3)]),
        ];
        let qs = vec![(lm(1), 0.5), (lm(2), 0.5), (lm(3), 0.5), (lm(4), 0.5)];
        let skew = vec![10.0, 0.1, 0.1, 0.1];
        let tree = build_question_tree(&rs, &skew, &qs);
        let e_skew = tree.expected_questions(&skew);
        // Every leaf is ≤ 2 deep in a perfect split; with skewed weights
        // the expected count is still ≤ 2 and ≥ 1.
        assert!(e_skew <= 2.0 + 1e-9);
        assert!(e_skew >= 1.0 - 1e-9);
    }

    #[test]
    fn all_questions_subset_of_library() {
        let rs = routes();
        let w = vec![1.0; 4];
        let qs = vec![(lm(1), 0.9), (lm(2), 0.8), (lm(3), 0.7), (lm(4), 0.6)];
        let tree = build_question_tree(&rs, &w, &qs);
        for q in tree.all_questions() {
            assert!(qs.iter().any(|&(l, _)| l == q));
        }
    }
}
