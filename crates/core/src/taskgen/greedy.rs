//! GreedySelect (paper §III-B2).
//!
//! Depth-first enumeration of landmark sets in significance order with two
//! prunings:
//!
//! * **discriminative cut** — recursion stops the moment a set becomes
//!   discriminative; all of its supersets are evaluated analytically via
//!   the best-padding formula (`GetMaxSet`), because padding with the most
//!   significant unused landmarks dominates every other superset;
//! * **upper-bound cut** — a partial set whose optimistic completion value
//!   (pad with the best remaining landmarks at every admissible size)
//!   cannot beat the incumbent is abandoned, together with its whole
//!   subtree.
//!
//! With an unlimited budget the search is exact: every discriminative set
//! contains a minimal discriminative subset, all subsets of minimal sets
//! are non-discriminative (so the canonical-order chain to each minimal
//! set survives the discriminative cut), and the padding formula yields
//! the best superset of each minimal set at every size.

use crate::error::CoreError;
use crate::taskgen::problem::{Selection, SelectionProblem};

/// Runs GreedySelect. `budget` caps visited sets; on exhaustion the best
/// incumbent is returned.
pub fn greedy_select(problem: &SelectionProblem, budget: usize) -> Result<Selection, CoreError> {
    let items = problem.items();
    let m = items.len();
    if m == 0 {
        return Err(CoreError::NoDiscriminativeSet);
    }
    let k_max = problem.k_max();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut visited = 0usize;
    let mut stack: Vec<usize> = Vec::with_capacity(k_max);

    #[allow(clippy::too_many_arguments)]
    fn expand(
        problem: &SelectionProblem,
        start: usize,
        cover: u128,
        sum: f64,
        stack: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
        visited: &mut usize,
        budget: usize,
    ) {
        let items = problem.items();
        let k_max = problem.k_max();
        for i in start..items.len() {
            if *visited >= budget {
                return;
            }
            *visited += 1;
            let new_cover = cover | items[i].cover;
            let new_sum = sum + items[i].significance;
            stack.push(i);
            if new_cover == problem.full_cover() {
                // Test step: discriminative — evaluate S and its best
                // supersets of every admissible size, then cut.
                for k in stack.len()..=k_max {
                    if let Some(padded) = problem.max_superset(stack, k) {
                        let value = problem.value_of(&padded);
                        if best.as_ref().is_none_or(|(v, _)| value > *v) {
                            *best = Some((value, padded));
                        }
                    }
                }
            } else if stack.len() < k_max {
                // Upper-bound cut.
                let bound = problem.value_upper_bound(new_sum, stack.len());
                if best.as_ref().is_none_or(|(v, _)| bound > *v) {
                    expand(
                        problem,
                        i + 1,
                        new_cover,
                        new_sum,
                        stack,
                        best,
                        visited,
                        budget,
                    );
                }
            }
            stack.pop();
        }
    }

    expand(
        problem,
        0,
        0,
        0.0,
        &mut stack,
        &mut best,
        &mut visited,
        budget,
    );
    match best {
        Some((_, indices)) => Ok(problem.selection_from(indices)),
        None => Err(CoreError::NoDiscriminativeSet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{is_discriminative, is_simplest_discriminative, LandmarkRoute};
    use crate::taskgen::brute::brute_force_select;
    use cp_roadnet::LandmarkId;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn routes3() -> Vec<LandmarkRoute> {
        vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
        ]
    }

    #[test]
    fn result_is_discriminative() {
        let rs = routes3();
        let p = SelectionProblem::prepare(&rs, &[0.9, 0.7, 0.5, 0.8, 0.3]).unwrap();
        let sel = greedy_select(&p, usize::MAX).unwrap();
        assert!(is_discriminative(&rs, &sel.landmarks));
    }

    #[test]
    fn exact_against_brute_force() {
        // GreedySelect with unlimited budget must equal the optimum.
        for seed in 0..40u64 {
            let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut sigs = vec![0.0; 12];
            for s in sigs.iter_mut() {
                *s = (next() % 1000) as f64 / 1000.0;
            }
            let mut routes = Vec::new();
            for _ in 0..5 {
                let members: Vec<LandmarkId> = (0..12)
                    .filter(|_| next() % 2 == 0)
                    .map(|i| lm(i as u32))
                    .collect();
                routes.push(LandmarkRoute::new(members));
            }
            let Ok(p) = SelectionProblem::prepare(&routes, &sigs) else {
                continue;
            };
            let brute = brute_force_select(&p, usize::MAX).unwrap();
            let greedy = greedy_select(&p, usize::MAX).unwrap();
            assert!(
                (greedy.value - brute.value).abs() < 1e-9,
                "seed {seed}: greedy {} vs brute {}",
                greedy.value,
                brute.value
            );
        }
    }

    #[test]
    fn singleton_separator_wins_when_most_significant() {
        let routes = vec![
            LandmarkRoute::new(vec![lm(0), lm(1)]),
            LandmarkRoute::new(vec![lm(0), lm(2)]),
        ];
        let p = SelectionProblem::prepare(&routes, &[0.5, 0.95, 0.2]).unwrap();
        let sel = greedy_select(&p, usize::MAX).unwrap();
        assert_eq!(sel.landmarks, vec![lm(1)]);
        assert!((sel.value - 0.95).abs() < 1e-12);
    }

    #[test]
    fn padding_beats_raw_minimal_set_when_it_helps() {
        // Two routes separated only by a low-significance landmark l2;
        // a high-significance non-separating landmark l3 exists. Minimal
        // set {l2} has value 0.1; padded {l2, l3} has value (0.1+0.9)/2 =
        // 0.5, which the algorithm must prefer (k_max = n = 2).
        let _routes = [
            LandmarkRoute::new(vec![lm(1), lm(2), lm(3)]),
            LandmarkRoute::new(vec![lm(1), lm(3)]),
        ];
        // l3 on both routes → not beneficial. Need the pad candidate to be
        // beneficial but non-separating… with 2 routes every beneficial
        // landmark separates the single pair, so padding never applies for
        // n=2. Use 3 routes instead: pair (0,1) separated only by l2
        // (sig 0.1); l4 (sig 0.9) separates the other pairs.
        let routes = vec![
            LandmarkRoute::new(vec![lm(1), lm(2), lm(4)]),
            LandmarkRoute::new(vec![lm(1), lm(4)]),
            LandmarkRoute::new(vec![lm(1), lm(9)]),
        ];
        let _ = routes;
        let routes = vec![
            LandmarkRoute::new(vec![lm(1), lm(2), lm(4)]),
            LandmarkRoute::new(vec![lm(1), lm(4)]),
            LandmarkRoute::new(vec![lm(1)]),
        ];
        let sigs = vec![0.5, 0.5, 0.1, 0.5, 0.9, 0.0, 0.0, 0.0, 0.0, 0.3];
        let p = SelectionProblem::prepare(&routes, &sigs).unwrap();
        let sel = greedy_select(&p, usize::MAX).unwrap();
        // {l2, l4} discriminates: l2 splits (0,1) and (0,2); l4 splits (0,2),(1,2).
        assert!(is_discriminative(&routes, &sel.landmarks));
        assert_eq!(
            sel.landmarks,
            vec![lm(4), lm(2)],
            "significance-descending order"
        );
        assert!((sel.value - 0.5).abs() < 1e-12);
        // And the chosen set is NOT simplest (l4∪l2 minimal? removing l2
        // breaks (0,1); removing l4 breaks (1,2) — actually it is minimal
        // here). Sanity only:
        assert!(is_simplest_discriminative(&routes, &sel.landmarks));
    }

    #[test]
    fn budget_limits_work() {
        let rs = routes3();
        let p = SelectionProblem::prepare(&rs, &[0.9, 0.7, 0.5, 0.8, 0.3]).unwrap();
        match greedy_select(&p, 2) {
            Ok(sel) => assert!(is_discriminative(&rs, &sel.landmarks)),
            Err(CoreError::NoDiscriminativeSet) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }
}
