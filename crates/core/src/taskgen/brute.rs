//! Exhaustive landmark selection — the baseline the paper calls
//! "impractical" ("the time cost grows exponentially with the size of the
//! landmark set"). Kept as the ground-truth optimum for correctness tests
//! and for experiment E2's runtime comparison.

use crate::error::CoreError;
use crate::taskgen::problem::{Selection, SelectionProblem};

/// Enumerates every subset of beneficial landmarks of size ≤ k_max and
/// returns the discriminative one with the highest objective value.
///
/// `budget` caps the number of visited subsets; on exhaustion the best
/// selection found so far is returned (and the search is truncated — the
/// result may then be suboptimal, mirroring how one would bound the
/// baseline in practice). Pass `usize::MAX` for a true optimum.
pub fn brute_force_select(
    problem: &SelectionProblem,
    budget: usize,
) -> Result<Selection, CoreError> {
    let m = problem.items().len();
    let k_max = problem.k_max();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut visited = 0usize;
    let mut stack: Vec<usize> = Vec::with_capacity(k_max);

    fn recurse(
        problem: &SelectionProblem,
        start: usize,
        cover: u128,
        sum: f64,
        stack: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
        visited: &mut usize,
        budget: usize,
    ) {
        if *visited >= budget {
            return;
        }
        *visited += 1;
        if cover == problem.full_cover() && !stack.is_empty() {
            let value = sum / stack.len() as f64;
            if best.as_ref().is_none_or(|(v, _)| value > *v) {
                *best = Some((value, stack.clone()));
            }
            // Supersets of a discriminative set remain discriminative but we
            // still enumerate them: a higher-significance superset can win
            // on the mean. (This is what makes brute force exponential.)
        }
        if stack.len() == problem.k_max() {
            return;
        }
        for i in start..problem.items().len() {
            stack.push(i);
            recurse(
                problem,
                i + 1,
                cover | problem.items()[i].cover,
                sum + problem.items()[i].significance,
                stack,
                best,
                visited,
                budget,
            );
            stack.pop();
            if *visited >= budget {
                return;
            }
        }
    }

    recurse(
        problem,
        0,
        0,
        0.0,
        &mut stack,
        &mut best,
        &mut visited,
        budget,
    );
    let _ = m;
    match best {
        Some((_, indices)) => Ok(problem.selection_from(indices)),
        None => Err(CoreError::NoDiscriminativeSet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{is_discriminative, LandmarkRoute};
    use cp_roadnet::LandmarkId;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn problem() -> SelectionProblem {
        let routes = vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
        ];
        SelectionProblem::prepare(&routes, &[0.9, 0.7, 0.5, 0.8, 0.3]).unwrap()
    }

    #[test]
    fn finds_a_discriminative_optimum() {
        let p = problem();
        let sel = brute_force_select(&p, usize::MAX).unwrap();
        let routes = vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
        ];
        assert!(is_discriminative(&routes, &sel.landmarks));
        assert!(sel.value > 0.0);
        assert!(sel.landmarks.len() >= p.k_min());
        assert!(sel.landmarks.len() <= p.k_max());
    }

    #[test]
    fn optimum_beats_every_manual_candidate() {
        let p = problem();
        let sel = brute_force_select(&p, usize::MAX).unwrap();
        // Enumerate all subsets manually (independent implementation) and
        // verify none beats the reported optimum.
        let m = p.items().len();
        for mask in 1u32..(1 << m) {
            let indices: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
            if indices.len() > p.k_max() || !p.covers(&indices) {
                continue;
            }
            assert!(
                p.value_of(&indices) <= sel.value + 1e-12,
                "subset {indices:?} beats reported optimum"
            );
        }
    }

    #[test]
    fn budget_zero_finds_nothing() {
        let p = problem();
        assert!(matches!(
            brute_force_select(&p, 0),
            Err(CoreError::NoDiscriminativeSet)
        ));
    }

    #[test]
    fn two_route_instance_picks_single_best_separator() {
        // Routes differ in {l1(0.9), l2(0.2)}; the best single separator is
        // l1 and mean significance of {l1} = 0.9 beats any pair.
        let routes = vec![
            LandmarkRoute::new(vec![lm(0), lm(1)]),
            LandmarkRoute::new(vec![lm(0), lm(2)]),
        ];
        let p = SelectionProblem::prepare(&routes, &[0.5, 0.9, 0.2]).unwrap();
        let sel = brute_force_select(&p, usize::MAX).unwrap();
        assert_eq!(sel.landmarks, vec![lm(1)]);
        assert!((sel.value - 0.9).abs() < 1e-12);
    }
}
