//! The landmark-selection optimisation problem (paper §III-B).
//!
//! > Given n landmark-based candidate routes R̄ and the significance of each
//! > landmark, select a landmark set L with size k (⌈log₂ n⌉ ≤ k ≤ n) which
//! > is discriminative to R̄, maximising `Σ_{l∈L} l.s · |L|⁻¹`.
//!
//! The key structural fact the solvers exploit: a set L is discriminative
//! iff for every route pair `(i, j)` it intersects the symmetric difference
//! `R̄ᵢ Δ R̄ⱼ` — i.e. selection is a *hitting-set* problem over route pairs.
//! We precompute, per beneficial landmark, the bitmask of route pairs it
//! separates; a candidate set is discriminative exactly when the OR of its
//! masks covers all pairs. Pair masks live in a `u128`, supporting up to 16
//! candidate routes (120 pairs) — far beyond the five sources the system
//! consults.

use crate::error::CoreError;
use crate::route::LandmarkRoute;
use cp_roadnet::LandmarkId;

/// Maximum number of candidate routes the pair-mask encoding supports.
pub const MAX_ROUTES: usize = 16;

/// One selectable landmark: identity, inferred significance and the set of
/// route pairs it separates.
#[derive(Debug, Clone, Copy)]
pub struct SelectionItem {
    /// The landmark.
    pub id: LandmarkId,
    /// Inferred significance `l.s`.
    pub significance: f64,
    /// Bit `p` set ⇔ this landmark separates route pair `p`.
    pub cover: u128,
}

/// A prepared instance of the selection problem.
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    /// Beneficial landmarks, sorted by significance descending
    /// (ties broken by landmark id for determinism).
    items: Vec<SelectionItem>,
    /// Mask with one bit per route pair.
    full_cover: u128,
    /// Number of candidate routes n.
    n_routes: usize,
}

/// A selection result: the chosen landmarks and the objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen landmark ids, in significance-descending order.
    pub landmarks: Vec<LandmarkId>,
    /// Objective value `Σ s / |L|` (mean significance).
    pub value: f64,
}

impl SelectionProblem {
    /// Prepares the problem from candidate landmark routes and a
    /// significance vector indexed by `LandmarkId`.
    pub fn prepare(
        routes: &[LandmarkRoute],
        significance: &[f64],
    ) -> Result<SelectionProblem, CoreError> {
        let n = routes.len();
        if n < 2 {
            return Err(CoreError::TooFewRoutes);
        }
        if n > MAX_ROUTES {
            return Err(CoreError::TooManyRoutes { max: MAX_ROUTES });
        }
        // Identical landmark sets can never be discriminated (Def. 4).
        for i in 0..n {
            for j in i + 1..n {
                if routes[i].same_landmark_set(&routes[j]) {
                    return Err(CoreError::UndiscriminableRoutes {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        // Beneficial landmarks: union minus intersection (paper §III-B:
        // "filter out some non-beneficial landmarks which are on / not on
        // every candidate route"). A landmark's pair-coverage mask is
        // non-zero exactly when it is beneficial, so we filter by that.
        let mut union: Vec<LandmarkId> = routes
            .iter()
            .flat_map(|r| r.sorted_landmarks().iter().copied())
            .collect();
        union.sort_unstable();
        union.dedup();

        let mut items = Vec::new();
        for &l in &union {
            if l.index() >= significance.len() {
                return Err(CoreError::SignificanceLengthMismatch {
                    expected: l.index() + 1,
                    actual: significance.len(),
                });
            }
            let mut cover: u128 = 0;
            let mut bit = 0u32;
            for i in 0..n {
                for j in i + 1..n {
                    if routes[i].contains(l) != routes[j].contains(l) {
                        cover |= 1u128 << bit;
                    }
                    bit += 1;
                }
            }
            if cover != 0 {
                items.push(SelectionItem {
                    id: l,
                    significance: significance[l.index()],
                    cover,
                });
            }
        }
        let pair_count = n * (n - 1) / 2;
        let full_cover = if pair_count == 128 {
            u128::MAX
        } else {
            (1u128 << pair_count) - 1
        };
        // Solvability: every pair must be separable by some landmark.
        let reachable = items.iter().fold(0u128, |acc, it| acc | it.cover);
        if reachable != full_cover {
            return Err(CoreError::NoDiscriminativeSet);
        }
        items.sort_by(|a, b| {
            b.significance
                .partial_cmp(&a.significance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Ok(SelectionProblem {
            items,
            full_cover,
            n_routes: n,
        })
    }

    /// Beneficial landmarks, significance-descending.
    pub fn items(&self) -> &[SelectionItem] {
        &self.items
    }

    /// The all-pairs coverage mask.
    pub fn full_cover(&self) -> u128 {
        self.full_cover
    }

    /// Number of candidate routes n.
    pub fn route_count(&self) -> usize {
        self.n_routes
    }

    /// Paper lower bound on selection size: ⌈log₂ n⌉. (Any discriminative
    /// set automatically satisfies it — k landmarks induce at most 2^k
    /// distinct projections.)
    pub fn k_min(&self) -> usize {
        (self.n_routes as f64).log2().ceil() as usize
    }

    /// Paper upper bound on selection size: n, clamped to the number of
    /// beneficial landmarks.
    pub fn k_max(&self) -> usize {
        self.n_routes.min(self.items.len())
    }

    /// Whether the item subset (by indices into [`Self::items`]) is
    /// discriminative.
    pub fn covers(&self, indices: &[usize]) -> bool {
        let mask = indices
            .iter()
            .fold(0u128, |acc, &i| acc | self.items[i].cover);
        mask == self.full_cover
    }

    /// Objective value of an item-index subset.
    pub fn value_of(&self, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let sum: f64 = indices.iter().map(|&i| self.items[i].significance).sum();
        sum / indices.len() as f64
    }

    /// Builds a [`Selection`] from item indices.
    pub fn selection_from(&self, mut indices: Vec<usize>) -> Selection {
        indices.sort_unstable();
        Selection {
            landmarks: indices.iter().map(|&i| self.items[i].id).collect(),
            value: self.value_of(&indices),
        }
    }

    /// The paper's `GetMaxSet`: the best value achievable by a superset of
    /// `indices` of exactly size `k`, padding with the highest-significance
    /// unused items. Returns the padded index set; `None` if not enough
    /// items exist.
    pub fn max_superset(&self, indices: &[usize], k: usize) -> Option<Vec<usize>> {
        if indices.len() > k || k > self.items.len() {
            return None;
        }
        let mut used = vec![false; self.items.len()];
        for &i in indices {
            used[i] = true;
        }
        let mut out = indices.to_vec();
        for i in 0..self.items.len() {
            if out.len() == k {
                break;
            }
            if !used[i] {
                out.push(i);
                used[i] = true;
            }
        }
        if out.len() == k {
            Some(out)
        } else {
            None
        }
    }

    /// Optimistic value bound for any superset of a partial set with
    /// significance sum `sum` and size `size`: the best
    /// `(sum + top-(k−size) remaining significances) / k` over
    /// `size ≤ k ≤ k_max`. Items are significance-sorted, so "top
    /// remaining" are simply the lowest unused indices; for an upper bound
    /// we may over-count items already in the set — still admissible.
    pub fn value_upper_bound(&self, sum: f64, size: usize) -> f64 {
        if size == 0 {
            // Best possible mean is the single best item.
            return self.items.first().map_or(0.0, |i| i.significance);
        }
        let mut best = sum / size as f64;
        let mut padded = sum;
        let mut count = size;
        for item in self.items.iter().take(self.k_max().saturating_sub(size)) {
            padded += item.significance;
            count += 1;
            if count > self.k_max() {
                break;
            }
            best = best.max(padded / count as f64);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn routes() -> Vec<LandmarkRoute> {
        // Fig. 2-like example: three routes sharing endpoints.
        vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
        ]
    }

    fn sig() -> Vec<f64> {
        vec![0.9, 0.7, 0.5, 0.8, 0.3]
    }

    #[test]
    fn beneficial_filter_drops_common_landmarks() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        // l0 is on every route, l2 on routes 0 and 1 only → l0 dropped.
        let ids: Vec<LandmarkId> = p.items().iter().map(|i| i.id).collect();
        assert!(!ids.contains(&lm(0)));
        assert!(ids.contains(&lm(1)));
        assert!(ids.contains(&lm(2)));
        assert!(ids.contains(&lm(3)));
        assert!(ids.contains(&lm(4)));
    }

    #[test]
    fn items_sorted_by_significance() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        for w in p.items().windows(2) {
            assert!(w[0].significance >= w[1].significance);
        }
    }

    #[test]
    fn covers_matches_definition() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        // Find item indices of l1 and l3.
        let idx_of = |l: LandmarkId| p.items().iter().position(|i| i.id == l).unwrap();
        // {l1} separates (r0,r1) and (r1,r2) but not (r0,r2) (both contain l1).
        assert!(!p.covers(&[idx_of(lm(1))]));
        // {l2, l4}: l2 separates (0,2),(1,2); l4 separates (0,2),(1,2) —
        // pair (0,1) unseparated.
        assert!(!p.covers(&[idx_of(lm(2)), idx_of(lm(4))]));
        // {l1, l2}: l1 separates (0,1),(1,2); l2 separates (0,2),(1,2). Full.
        assert!(p.covers(&[idx_of(lm(1)), idx_of(lm(2))]));
    }

    #[test]
    fn value_is_mean_significance() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        let idx_of = |l: LandmarkId| p.items().iter().position(|i| i.id == l).unwrap();
        let v = p.value_of(&[idx_of(lm(1)), idx_of(lm(3))]);
        assert!((v - (0.7 + 0.8) / 2.0).abs() < 1e-12);
        assert_eq!(p.value_of(&[]), 0.0);
    }

    #[test]
    fn k_bounds_follow_paper() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        assert_eq!(p.k_min(), 2); // ceil(log2 3)
        assert_eq!(p.k_max(), 3); // n = 3 < 4 beneficial
    }

    #[test]
    fn identical_routes_rejected() {
        let rs = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(2), lm(1)]),
        ];
        assert!(matches!(
            SelectionProblem::prepare(&rs, &sig()),
            Err(CoreError::UndiscriminableRoutes {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn single_route_rejected() {
        let rs = vec![LandmarkRoute::new(vec![lm(1)])];
        assert!(matches!(
            SelectionProblem::prepare(&rs, &sig()),
            Err(CoreError::TooFewRoutes)
        ));
    }

    #[test]
    fn short_significance_vector_rejected() {
        assert!(matches!(
            SelectionProblem::prepare(&routes(), &[0.5, 0.5]),
            Err(CoreError::SignificanceLengthMismatch { .. })
        ));
    }

    #[test]
    fn max_superset_pads_with_best() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        // items sorted: l3 (0.8), l1 (0.7), l2 (0.5), l4 (0.3)
        let padded = p.max_superset(&[2], 2).unwrap(); // {l2} padded to size 2
        assert!(padded.contains(&0), "pads with the top item");
        assert_eq!(padded.len(), 2);
        assert!(p.max_superset(&[0, 1, 2], 2).is_none());
        assert!(p.max_superset(&[0], 10).is_none());
    }

    #[test]
    fn upper_bound_dominates_reachable_values() {
        let p = SelectionProblem::prepare(&routes(), &sig()).unwrap();
        // Bound for the partial set {l2} (index 2): any superset's value
        // must be ≤ bound.
        let sum = p.items()[2].significance;
        let bound = p.value_upper_bound(sum, 1);
        for k in 1..=p.k_max() {
            if let Some(sup) = p.max_superset(&[2], k) {
                assert!(p.value_of(&sup) <= bound + 1e-12);
            }
        }
    }

    #[test]
    fn too_many_routes_rejected() {
        let rs: Vec<LandmarkRoute> = (0..17)
            .map(|i| LandmarkRoute::new(vec![lm(i), lm(100 + i)]))
            .collect();
        let sigs = vec![0.5; 200];
        assert!(matches!(
            SelectionProblem::prepare(&rs, &sigs),
            Err(CoreError::TooManyRoutes { max: 16 })
        ));
    }

    #[test]
    fn unseparable_pair_detected() {
        // Routes share the same beneficial profile on all listed landmarks
        // except none separates the pair... construct: r0={1}, r1={1},
        // caught earlier as identical; instead r0={1,2}, r1={1,2,3},
        // r2={9}: fine. A truly unseparable non-identical case cannot
        // exist (symmetric difference non-empty ⇒ separable by any element
        // of it), so prepare() only fails via identical sets.
        let rs = vec![
            LandmarkRoute::new(vec![lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(1), lm(2), lm(3)]),
        ];
        let p = SelectionProblem::prepare(&rs, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(p.items().len(), 1); // only l3 is beneficial
        assert!(p.covers(&[0]));
    }
}
