//! ILS — Incremental Landmark Selecting (paper §III-B1).
//!
//! ILS enumerates landmark sets bottom-up, level by level. At level k it
//! identifies the discriminative sets, keeps the best of them as
//! `Lsim[k]` (the selected simplest-discriminative set of size k), prunes
//! every discriminative set (their supersets are handled analytically),
//! and expands only the undiscriminative sets to level k+1 — adding only
//! landmarks of lower significance than everything already in the set so
//! that each subset is generated exactly once.
//!
//! The final answer composes the `Lsim` table: for each admissible size k,
//! `Lk = argmax_{i ≤ k} value(GetMaxSet(L, k, Lsim[i]))`, where
//! `GetMaxSet` pads a simplest set to size k with the most significant
//! unused landmarks; the best `Lk` over all k wins.
//!
//! Per the paper's optimisation note ("test less S, which prunes many
//! insignificant-enough landmark sets and their supersets"), expansion
//! additionally applies the same admissible value upper bound as
//! GreedySelect: a level set whose best possible composition cannot beat
//! the best composition found so far is not expanded.

use crate::error::CoreError;
use crate::taskgen::problem::{Selection, SelectionProblem};

/// One level-set entry during the bottom-up sweep.
#[derive(Debug, Clone)]
struct LevelSet {
    /// Item indices, ascending (significance-descending order of items).
    indices: Vec<usize>,
    cover: u128,
    sum: f64,
}

/// Runs ILS. `budget` caps the number of candidate sets tested across all
/// levels; on exhaustion the composition uses whatever `Lsim` entries were
/// found so far.
pub fn ils_select(problem: &SelectionProblem, budget: usize) -> Result<Selection, CoreError> {
    let items = problem.items();
    let m = items.len();
    let k_max = problem.k_max();
    if m == 0 {
        return Err(CoreError::NoDiscriminativeSet);
    }

    // Lsim[k] = best simplest-discriminative set of size k (paper keeps one
    // per size). Index 0 unused.
    let mut lsim: Vec<Option<(f64, Vec<usize>)>> = vec![None; k_max + 1];

    // Level 1: all singletons.
    let mut level: Vec<LevelSet> = (0..m)
        .map(|i| LevelSet {
            indices: vec![i],
            cover: items[i].cover,
            sum: items[i].significance,
        })
        .collect();

    let mut tested = 0usize;
    let mut k = 1usize;
    // Running best composed value, used as the pruning incumbent.
    let mut incumbent = f64::NEG_INFINITY;
    while !level.is_empty() && k <= k_max && tested < budget {
        let mut next: Vec<LevelSet> = Vec::new();
        for set in &level {
            tested += 1;
            if tested > budget {
                break;
            }
            if set.cover == problem.full_cover() {
                // Discriminative: candidate for Lsim[k]; pruned from
                // expansion (supersets handled via GetMaxSet).
                let value = set.sum / k as f64;
                if lsim[k].as_ref().is_none_or(|(v, _)| value > *v) {
                    lsim[k] = Some((value, set.indices.clone()));
                    // Update the incumbent with this set's best composition.
                    for kk in k.max(problem.k_min())..=k_max {
                        if let Some(padded) = problem.max_superset(&set.indices, kk) {
                            incumbent = incumbent.max(problem.value_of(&padded));
                        }
                    }
                }
            } else if k < k_max {
                // Upper-bound cut (paper's "test less S" optimisation):
                // skip subtrees whose optimistic completion cannot beat the
                // incumbent composition.
                if problem.value_upper_bound(set.sum, set.indices.len()) <= incumbent {
                    continue;
                }
                // Expand with strictly lower-significance (higher-index)
                // items — the paper's duplicate-elimination rule.
                let last = *set.indices.last().expect("level sets are non-empty");
                for i in last + 1..m {
                    let mut indices = set.indices.clone();
                    indices.push(i);
                    next.push(LevelSet {
                        indices,
                        cover: set.cover | items[i].cover,
                        sum: set.sum + items[i].significance,
                    });
                }
            }
        }
        level = next;
        k += 1;
    }

    // Composition step.
    let mut best: Option<(f64, Vec<usize>)> = None;
    for k in problem.k_min()..=k_max {
        for i in 1..=k {
            let Some((_, simple)) = &lsim[i] else {
                continue;
            };
            let Some(padded) = problem.max_superset(simple, k) else {
                continue;
            };
            let value = problem.value_of(&padded);
            if best.as_ref().is_none_or(|(v, _)| value > *v) {
                best = Some((value, padded));
            }
        }
    }
    match best {
        Some((_, indices)) => Ok(problem.selection_from(indices)),
        None => Err(CoreError::NoDiscriminativeSet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{is_discriminative, LandmarkRoute};
    use crate::taskgen::brute::brute_force_select;
    use cp_roadnet::LandmarkId;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn routes3() -> Vec<LandmarkRoute> {
        vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
        ]
    }

    #[test]
    fn result_is_discriminative() {
        let rs = routes3();
        let p = SelectionProblem::prepare(&rs, &[0.9, 0.7, 0.5, 0.8, 0.3]).unwrap();
        let sel = ils_select(&p, usize::MAX).unwrap();
        assert!(is_discriminative(&rs, &sel.landmarks));
        assert!(sel.landmarks.len() >= p.k_min() && sel.landmarks.len() <= p.k_max());
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Random-ish instances over 4 routes, 10 landmarks.
        for seed in 0..20u64 {
            let mut sigs = vec![0.0; 10];
            let mut routes = Vec::new();
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for s in sigs.iter_mut() {
                *s = (next() % 1000) as f64 / 1000.0;
            }
            for _ in 0..4 {
                let members: Vec<LandmarkId> = (0..10)
                    .filter(|_| next() % 2 == 0)
                    .map(|i| lm(i as u32))
                    .collect();
                routes.push(LandmarkRoute::new(members));
            }
            let Ok(p) = SelectionProblem::prepare(&routes, &sigs) else {
                continue; // identical/unseparable instance, skip
            };
            let brute = brute_force_select(&p, usize::MAX).unwrap();
            let ils = ils_select(&p, usize::MAX).unwrap();
            // ILS is a heuristic but on these tiny instances it should be
            // within a whisker of optimal, and never above it.
            assert!(ils.value <= brute.value + 1e-12, "seed {seed}");
            assert!(
                ils.value >= 0.95 * brute.value - 1e-12,
                "seed {seed}: ils {} vs brute {}",
                ils.value,
                brute.value
            );
        }
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let rs = routes3();
        let p = SelectionProblem::prepare(&rs, &[0.9, 0.7, 0.5, 0.8, 0.3]).unwrap();
        // A budget of a few sets still finds singleton-level Lsims if any
        // exist; for this instance no singleton discriminates, so a tiny
        // budget yields an error.
        match ils_select(&p, 1) {
            Ok(sel) => assert!(is_discriminative(&rs, &sel.landmarks)),
            Err(CoreError::NoDiscriminativeSet) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn prefers_high_significance_separator() {
        let routes = vec![
            LandmarkRoute::new(vec![lm(0), lm(1)]),
            LandmarkRoute::new(vec![lm(0), lm(2)]),
        ];
        let p = SelectionProblem::prepare(&routes, &[0.5, 0.95, 0.2]).unwrap();
        let sel = ils_select(&p, usize::MAX).unwrap();
        assert_eq!(sel.landmarks, vec![lm(1)]);
    }
}
