//! Task generation (paper §III): landmark selection + question ordering.
//!
//! The end-to-end flow implemented by [`generate_task`]:
//!
//! 1. calibrate each candidate road route into a landmark-based route;
//! 2. solve the landmark-selection optimisation (small, significant,
//!    discriminative) with the configured algorithm;
//! 3. order the selected questions into an ID3 decision tree minimising the
//!    expected number of questions.

pub mod brute;
pub mod greedy;
pub mod ils;
pub mod ordering;
pub mod problem;

pub use brute::brute_force_select;
pub use greedy::greedy_select;
pub use ils::ils_select;
pub use ordering::{
    build_question_tree, entropy, information_strength, QuestionNode, QuestionTree,
};
pub use problem::{Selection, SelectionItem, SelectionProblem, MAX_ROUTES};

use crate::error::CoreError;
use crate::route::LandmarkRoute;
use cp_roadnet::LandmarkId;

/// Which selection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionAlgorithm {
    /// Exhaustive enumeration (baseline; exponential).
    BruteForce,
    /// Incremental Landmark Selecting (paper §III-B1).
    Ils,
    /// GreedySelect with upper-bound pruning (paper §III-B2).
    Greedy,
}

impl SelectionAlgorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [SelectionAlgorithm; 3] = [
        SelectionAlgorithm::BruteForce,
        SelectionAlgorithm::Ils,
        SelectionAlgorithm::Greedy,
    ];

    /// Display name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectionAlgorithm::BruteForce => "BruteForce",
            SelectionAlgorithm::Ils => "ILS",
            SelectionAlgorithm::Greedy => "GreedySelect",
        }
    }

    /// Runs the algorithm.
    pub fn run(self, problem: &SelectionProblem, budget: usize) -> Result<Selection, CoreError> {
        match self {
            SelectionAlgorithm::BruteForce => brute_force_select(problem, budget),
            SelectionAlgorithm::Ils => ils_select(problem, budget),
            SelectionAlgorithm::Greedy => greedy_select(problem, budget),
        }
    }
}

/// A generated crowdsourcing task.
#[derive(Debug, Clone)]
pub struct Task {
    /// The landmark-based candidate routes, in candidate order.
    pub routes: Vec<LandmarkRoute>,
    /// The selected question landmarks with their significances,
    /// significance-descending.
    pub questions: Vec<(LandmarkId, f64)>,
    /// Objective value of the selection.
    pub selection_value: f64,
    /// The ordered question tree.
    pub tree: QuestionTree,
}

impl Task {
    /// Expected number of questions under a uniform route prior.
    pub fn expected_questions(&self) -> f64 {
        let w = vec![1.0; self.routes.len()];
        self.tree.expected_questions(&w)
    }
}

/// Generates a task from landmark-based candidate routes.
///
/// `significance` is indexed by `LandmarkId` over the whole landmark set.
/// `weights` are per-route prior weights for the ID3 ordering (uniform if
/// `None`).
pub fn generate_task(
    routes: Vec<LandmarkRoute>,
    significance: &[f64],
    algorithm: SelectionAlgorithm,
    budget: usize,
    weights: Option<&[f64]>,
) -> Result<Task, CoreError> {
    let problem = SelectionProblem::prepare(&routes, significance)?;
    let selection = algorithm.run(&problem, budget)?;
    let questions: Vec<(LandmarkId, f64)> = selection
        .landmarks
        .iter()
        .map(|&l| (l, significance[l.index()]))
        .collect();
    let uniform = vec![1.0; routes.len()];
    let w = weights.unwrap_or(&uniform);
    if w.len() != routes.len() {
        return Err(CoreError::InvalidConfig("route weights length mismatch"));
    }
    let tree = build_question_tree(&routes, w, &questions);
    Ok(Task {
        routes,
        questions,
        selection_value: selection.value,
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn routes() -> Vec<LandmarkRoute> {
        vec![
            LandmarkRoute::new(vec![lm(0), lm(1), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(3), lm(2)]),
            LandmarkRoute::new(vec![lm(0), lm(1), lm(4)]),
            LandmarkRoute::new(vec![lm(0), lm(5)]),
        ]
    }

    fn sig() -> Vec<f64> {
        vec![0.9, 0.7, 0.5, 0.8, 0.3, 0.6]
    }

    #[test]
    fn task_generation_end_to_end() {
        for alg in SelectionAlgorithm::ALL {
            let task = generate_task(routes(), &sig(), alg, usize::MAX, None).unwrap();
            assert!(!task.questions.is_empty(), "{}", alg.name());
            assert!(task.selection_value > 0.0);
            // Every route must be reachable by answering truthfully.
            for (i, r) in task.routes.iter().enumerate() {
                let (got, _) = task.tree.walk_answers(|l| r.contains(l));
                assert_eq!(got, Some(i), "{} route {i}", alg.name());
            }
            // Expected questions bounded by the library size.
            assert!(task.expected_questions() <= task.questions.len() as f64);
        }
    }

    #[test]
    fn all_algorithms_selection_values_close() {
        let brute = generate_task(
            routes(),
            &sig(),
            SelectionAlgorithm::BruteForce,
            usize::MAX,
            None,
        )
        .unwrap();
        let greedy = generate_task(
            routes(),
            &sig(),
            SelectionAlgorithm::Greedy,
            usize::MAX,
            None,
        )
        .unwrap();
        let ils =
            generate_task(routes(), &sig(), SelectionAlgorithm::Ils, usize::MAX, None).unwrap();
        assert!((brute.selection_value - greedy.selection_value).abs() < 1e-9);
        assert!(ils.selection_value <= brute.selection_value + 1e-9);
        assert!(ils.selection_value >= 0.9 * brute.selection_value);
    }

    #[test]
    fn weight_length_mismatch_rejected() {
        let r = routes();
        let w = vec![1.0; 2];
        assert!(matches!(
            generate_task(r, &sig(), SelectionAlgorithm::Greedy, usize::MAX, Some(&w)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn algorithm_names_unique() {
        let names: std::collections::HashSet<&str> =
            SelectionAlgorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
