//! Error types of the CrowdPlanner core.

use cp_roadnet::RoadNetError;
use std::fmt;

/// Errors produced by the CrowdPlanner core components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The candidate set has fewer than two distinct routes — there is
    /// nothing to discriminate (the TR module should have resolved this).
    TooFewRoutes,
    /// Two candidate routes have identical landmark sets, so no landmark
    /// set can discriminate them. Candidates must be deduplicated first.
    UndiscriminableRoutes {
        /// Indices of the first offending pair.
        first: usize,
        /// Second member of the pair.
        second: usize,
    },
    /// More candidate routes than the selection bit-masks support.
    TooManyRoutes {
        /// Supported maximum.
        max: usize,
    },
    /// No landmark set satisfying the constraints exists (e.g. the
    /// beneficial landmarks cannot hit every route pair).
    NoDiscriminativeSet,
    /// No candidate source could produce a route for the request.
    NoCandidates,
    /// The worker pool has nobody eligible for the task.
    NoEligibleWorkers,
    /// A significance vector of the wrong length was supplied.
    SignificanceLengthMismatch {
        /// Expected entries (number of landmarks).
        expected: usize,
        /// Actual entries supplied.
        actual: usize,
    },
    /// An invalid configuration value.
    InvalidConfig(&'static str),
    /// An underlying road-network failure.
    RoadNet(RoadNetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooFewRoutes => {
                write!(f, "candidate set needs at least two distinct routes")
            }
            CoreError::UndiscriminableRoutes { first, second } => write!(
                f,
                "candidate routes {first} and {second} have identical landmark sets"
            ),
            CoreError::TooManyRoutes { max } => {
                write!(
                    f,
                    "candidate set exceeds the supported maximum of {max} routes"
                )
            }
            CoreError::NoDiscriminativeSet => {
                write!(
                    f,
                    "no discriminative landmark set exists for the candidates"
                )
            }
            CoreError::NoCandidates => write!(f, "no source produced a candidate route"),
            CoreError::NoEligibleWorkers => write!(f, "no eligible workers for the task"),
            CoreError::SignificanceLengthMismatch { expected, actual } => write!(
                f,
                "significance vector has {actual} entries, expected {expected}"
            ),
            CoreError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            CoreError::RoadNet(e) => write!(f, "road network error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::RoadNet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RoadNetError> for CoreError {
    fn from(e: RoadNetError) -> Self {
        CoreError::RoadNet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::TooFewRoutes.to_string().contains("two distinct"));
        assert!(CoreError::UndiscriminableRoutes {
            first: 1,
            second: 3
        }
        .to_string()
        .contains("1 and 3"));
        assert!(CoreError::TooManyRoutes { max: 16 }
            .to_string()
            .contains("16"));
        assert!(CoreError::SignificanceLengthMismatch {
            expected: 10,
            actual: 3
        }
        .to_string()
        .contains("expected 10"));
    }

    #[test]
    fn roadnet_errors_convert() {
        let e: CoreError = RoadNetError::UnknownNode.into();
        assert!(matches!(e, CoreError::RoadNet(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
