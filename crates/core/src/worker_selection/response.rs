//! Response-time eligibility filter (paper §IV-A).
//!
//! A task carries a user-specified deadline `t`; a worker is eligible only
//! if the probability of responding within `t` — the exponential CDF
//! `F(t; λ) = 1 − e^{−λt}` with λ estimated from the worker's observed
//! response times — reaches η_time.

use crate::config::Config;
use cp_crowd::{response_probability, CrowdObserve, WorkerId};

/// Estimated response rate of a worker: MLE over the observed history
/// (`λ̂ = n / Σt`, identical to [`cp_crowd::estimate_lambda`] but
/// computed from the running `(count, sum)` so selection never copies
/// response histories), falling back to the configured default for
/// workers with no history.
pub fn estimated_rate<C: CrowdObserve + ?Sized>(crowd: &C, worker: WorkerId, cfg: &Config) -> f64 {
    let (count, total) = crowd.response_time_stats(worker);
    rate_from_stats(count, total, cfg)
}

/// The λ̂ rule on raw `(count, Σt)` stats — the single definition shared
/// by [`estimated_rate`] and callers that already hold a bulk stats
/// snapshot (one desk-lock acquisition for the whole population).
pub fn rate_from_stats(count: usize, total: f64, cfg: &Config) -> f64 {
    if count == 0 || total <= 0.0 {
        cfg.default_lambda
    } else {
        count as f64 / total
    }
}

/// Probability the worker answers within the task deadline.
pub fn on_time_probability<C: CrowdObserve + ?Sized>(
    crowd: &C,
    worker: WorkerId,
    cfg: &Config,
) -> f64 {
    response_probability(estimated_rate(crowd, worker, cfg), cfg.task_deadline)
}

/// The response-time filter: `F(t;λ) ≥ η_time`.
pub fn is_responsive<C: CrowdObserve + ?Sized>(crowd: &C, worker: WorkerId, cfg: &Config) -> bool {
    on_time_probability(crowd, worker, cfg) >= cfg.eta_time
}

/// The quota filter: the worker still has task capacity (η_#q).
pub fn has_quota<C: CrowdObserve + ?Sized>(crowd: &C, worker: WorkerId, cfg: &Config) -> bool {
    crowd.outstanding(worker) < cfg.eta_quota
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_crowd::{AnswerModel, Platform, PopulationParams, WorkerPopulation};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn setup() -> (cp_roadnet::LandmarkSet, Platform, Config) {
        let city = generate_city(&CityParams::small(), 67).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 67);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 67);
        (
            lms,
            Platform::new(pop, AnswerModel::default(), 67),
            Config::default(),
        )
    }

    #[test]
    fn default_rate_used_without_history() {
        let (_, platform, cfg) = setup();
        let w = WorkerId(0);
        assert_eq!(estimated_rate(&platform, w, &cfg), cfg.default_lambda);
    }

    #[test]
    fn history_updates_rate_estimate() {
        let (lms, mut platform, cfg) = setup();
        platform.warm_up(&lms, 30);
        // With 30 observations the estimate should be near the latent λ.
        for w in platform.population().ids().take(10) {
            let est = estimated_rate(&platform, w, &cfg);
            let truth = platform.population().get(w).lambda;
            assert!(
                est > truth * 0.5 && est < truth * 2.0,
                "estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn fast_workers_pass_slow_workers_fail() {
        let (lms, mut platform, mut cfg) = setup();
        platform.warm_up(&lms, 50);
        cfg.task_deadline = 600.0;
        cfg.eta_time = 0.5;
        let mut passed = 0;
        let mut failed = 0;
        for w in platform.population().ids() {
            if is_responsive(&platform, w, &cfg) {
                passed += 1;
            } else {
                failed += 1;
            }
        }
        // Mean response 900 s with ±3x spread: both outcomes must occur.
        assert!(passed > 0, "nobody passed");
        assert!(failed > 0, "nobody failed");
    }

    #[test]
    fn quota_filter() {
        let (_, mut platform, cfg) = setup();
        let w = WorkerId(1);
        assert!(has_quota(&platform, w, &cfg));
        for _ in 0..cfg.eta_quota {
            platform.assign(w);
        }
        assert!(!has_quota(&platform, w, &cfg));
        platform.finish(w);
        assert!(has_quota(&platform, w, &cfg));
    }

    #[test]
    fn longer_deadline_makes_more_workers_responsive() {
        let (lms, mut platform, mut cfg) = setup();
        platform.warm_up(&lms, 50);
        cfg.eta_time = 0.7;
        cfg.task_deadline = 300.0;
        let short: usize = platform
            .population()
            .ids()
            .filter(|&w| is_responsive(&platform, w, &cfg))
            .count();
        cfg.task_deadline = 7200.0;
        let long: usize = platform
            .population()
            .ids()
            .filter(|&w| is_responsive(&platform, w, &cfg))
            .count();
        assert!(long >= short);
        assert!(long > 0);
    }
}
