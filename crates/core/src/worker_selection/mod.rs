//! Worker selection (paper §IV): find the top-k eligible workers for a
//! task.
//!
//! Pipeline implemented by [`select_workers`]:
//!
//! 1. build the sparse observed familiarity matrix `M`
//!    ([`familiarity`]);
//! 2. densify it with Probabilistic Matrix Factorization ([`pmf`]);
//! 3. spread knowledge spatially with the Gaussian kernel
//!    ([`accumulate`]) to get `M*`;
//! 4. filter candidates by quota (η_#q) and response-time probability
//!    (η_time) ([`response`]);
//! 5. pick the top-k by rated voting over the task's landmarks
//!    ([`voting`]).

pub mod accumulate;
pub mod familiarity;
pub mod matrix;
pub mod pmf;
pub mod response;
pub mod voting;

pub use accumulate::accumulate_scores;
pub use familiarity::{
    familiarity_score, history_familiarity, observed_matrix, profile_familiarity,
};
pub use matrix::{DenseMatrix, SparseObservations};
pub use pmf::{PmfModel, PmfParams};
pub use response::{estimated_rate, has_quota, is_responsive, on_time_probability};
pub use voting::{preference_scores, top_k_workers};

use crate::config::Config;
use crate::error::CoreError;
use cp_crowd::{CrowdObserve, WorkerId};
use cp_roadnet::{LandmarkId, LandmarkSet};

/// Precomputed worker-knowledge state (`M*` plus provenance), reusable
/// across tasks until new answers arrive.
#[derive(Debug, Clone)]
pub struct KnowledgeModel {
    /// Accumulated familiarity matrix `M*` (workers × landmarks).
    pub accumulated: DenseMatrix,
    /// Density of the observed matrix `M` (diagnostic).
    pub observed_density: f64,
}

impl KnowledgeModel {
    /// Builds the knowledge model: observed `M` → PMF densified `M'` →
    /// accumulated `M*`. Generic over the crowd view: an exclusively
    /// owned `Platform` and a shared `CrowdDesk` both work.
    pub fn build<C: CrowdObserve + ?Sized>(
        crowd: &C,
        landmarks: &LandmarkSet,
        cfg: &Config,
    ) -> KnowledgeModel {
        let n = crowd.population().len();
        let m = landmarks.len();
        let obs = observed_matrix(crowd, landmarks, cfg);
        let observed_density = if n * m == 0 {
            0.0
        } else {
            obs.len() as f64 / (n * m) as f64
        };
        let params = PmfParams {
            dims: cfg.pmf_dims,
            ..PmfParams::default()
        };
        let model = PmfModel::fit(&obs, n, m, &params);
        let densified = model.densify(&obs);
        let accumulated = accumulate_scores(landmarks, &densified, cfg.eta_dis);
        KnowledgeModel {
            accumulated,
            observed_density,
        }
    }
}

/// Runs the full worker-selection pipeline for a task asking about
/// `task_landmarks`. Returns the top-k eligible workers.
pub fn select_workers<C: CrowdObserve + ?Sized>(
    crowd: &C,
    knowledge: &KnowledgeModel,
    task_landmarks: &[LandmarkId],
    cfg: &Config,
) -> Result<Vec<WorkerId>, CoreError> {
    Ok(
        select_workers_scored(crowd, knowledge, task_landmarks, cfg)?
            .into_iter()
            .map(|(w, _)| w)
            .collect(),
    )
}

/// Like [`select_workers`] but returns each worker's rated-voting
/// preference score, which the orchestrator uses to weight their vote.
pub fn select_workers_scored<C: CrowdObserve + ?Sized>(
    crowd: &C,
    knowledge: &KnowledgeModel,
    task_landmarks: &[LandmarkId],
    cfg: &Config,
) -> Result<Vec<(WorkerId, f64)>, CoreError> {
    // Candidates: workers with quota, acceptable response probability, and
    // some knowledge of at least one task landmark (∪ W_l). Quota and
    // response-time observables come from one bulk snapshot (a single
    // lock acquisition on shared desks) — per-worker `has_quota` /
    // `is_responsive` calls would serialise on the desk mutex twice per
    // population member.
    let snapshot = crowd.selection_snapshot();
    let candidates: Vec<WorkerId> = crowd
        .population()
        .ids()
        .filter(|&w| {
            let (outstanding, count, sum) = snapshot[w.index()];
            if outstanding >= cfg.eta_quota {
                return false;
            }
            let rate = response::rate_from_stats(count, sum, cfg);
            cp_crowd::response_probability(rate, cfg.task_deadline) >= cfg.eta_time
        })
        .filter(|&w| {
            task_landmarks
                .iter()
                .any(|&l| knowledge.accumulated.get(w.index(), l.index()) > 0.0)
        })
        .collect();
    if candidates.is_empty() {
        return Err(CoreError::NoEligibleWorkers);
    }
    Ok(
        preference_scores(&candidates, task_landmarks, &knowledge.accumulated)
            .into_iter()
            .take(cfg.k_workers)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_crowd::{AnswerModel, Platform, PopulationParams, WorkerPopulation};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn setup() -> (LandmarkSet, Platform, Config) {
        let city = generate_city(&CityParams::small(), 71).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 71);
        // The unit-test city is tiny (~1.8 km); scale both the workers'
        // latent knowledge radius and η_dis down proportionally, otherwise
        // everyone knows the whole town and spatial selection has nothing
        // to discriminate.
        let pop = WorkerPopulation::generate(
            &city.graph,
            &PopulationParams {
                knowledge_scale: 400.0,
                ..PopulationParams::default()
            },
            71,
        );
        let mut platform = Platform::new(pop, AnswerModel::default(), 71);
        platform.warm_up_with_radius(&lms, 15, 600.0);
        let cfg = Config {
            eta_dis: 500.0,
            ..Config::default()
        };
        (lms, platform, cfg)
    }

    #[test]
    fn pipeline_selects_k_workers() {
        let (lms, platform, cfg) = setup();
        let knowledge = KnowledgeModel::build(&platform, &lms, &cfg);
        assert!(knowledge.observed_density > 0.0);
        assert!(knowledge.observed_density < 1.0);
        let task: Vec<LandmarkId> = lms.ids().take(4).collect();
        let workers = select_workers(&platform, &knowledge, &task, &cfg).unwrap();
        assert!(!workers.is_empty());
        assert!(workers.len() <= cfg.k_workers);
        // No duplicates.
        let mut sorted = workers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), workers.len());
    }

    #[test]
    fn selected_workers_know_the_task_better_than_average() {
        let (lms, platform, cfg) = setup();
        let knowledge = KnowledgeModel::build(&platform, &lms, &cfg);
        // Realistic task: question landmarks lie along one route, i.e.
        // they are spatially coherent — take a cluster around one anchor.
        let center = lms.get(LandmarkId(0)).position;
        let task: Vec<LandmarkId> = lms
            .within_radius(&center, 500.0)
            .into_iter()
            .take(5)
            .collect();
        assert!(task.len() >= 2, "need a non-trivial task");
        let selected = select_workers(&platform, &knowledge, &task, &cfg).unwrap();
        let true_task_knowledge = |w: WorkerId| {
            task.iter()
                .map(|&l| platform.population().true_familiarity(w, lms.get(l)))
                .sum::<f64>()
        };
        let sel_mean: f64 = selected
            .iter()
            .map(|&w| true_task_knowledge(w))
            .sum::<f64>()
            / selected.len() as f64;
        let all_mean: f64 = platform
            .population()
            .ids()
            .map(true_task_knowledge)
            .sum::<f64>()
            / platform.population().len() as f64;
        assert!(
            sel_mean > all_mean,
            "selected {sel_mean:.3} must beat average {all_mean:.3}"
        );
    }

    #[test]
    fn quota_exhausted_workers_are_skipped() {
        let (lms, mut platform, cfg) = setup();
        let knowledge = KnowledgeModel::build(&platform, &lms, &cfg);
        let task: Vec<LandmarkId> = lms.ids().take(4).collect();
        let first = select_workers(&platform, &knowledge, &task, &cfg).unwrap();
        // Exhaust the quota of the top worker, reselect: they must vanish.
        let top = first[0];
        for _ in 0..cfg.eta_quota {
            platform.assign(top);
        }
        let second = select_workers(&platform, &knowledge, &task, &cfg).unwrap();
        assert!(!second.contains(&top));
    }

    #[test]
    fn impossible_deadline_yields_no_workers() {
        let (lms, platform, mut cfg) = setup();
        let knowledge = KnowledgeModel::build(&platform, &lms, &cfg);
        cfg.task_deadline = 0.001;
        cfg.eta_time = 0.99;
        let task: Vec<LandmarkId> = lms.ids().take(3).collect();
        assert!(matches!(
            select_workers(&platform, &knowledge, &task, &cfg),
            Err(CoreError::NoEligibleWorkers)
        ));
    }
}
