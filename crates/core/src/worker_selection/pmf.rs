//! Probabilistic Matrix Factorization (paper §IV-B; Mnih & Salakhutdinov,
//! NIPS 2007, the paper's ref \[15\]).
//!
//! The observed familiarity matrix `M` is factorised as `M ≈ WᵀL` with
//! worker factors `W ∈ R^{d×n}` and landmark factors `L ∈ R^{d×m}`; MAP
//! estimation under Gaussian observation noise and zero-mean Gaussian
//! priors reduces to minimising
//!
//! ```text
//! Σ_{ij observed} (M_ij − Wᵢᵀ Lⱼ)² + λ_W Σ‖Wᵢ‖² + λ_L Σ‖Lⱼ‖²
//! ```
//!
//! which we do with deterministic stochastic gradient descent (fixed
//! traversal order, seeded initialisation). The refit matrix `M' = WᵀL`
//! predicts familiarity for worker–landmark pairs that were never
//! observed, exploiting latent similarity between workers — exactly the
//! paper's motivation ("workers who have similar profile information …
//! are highly possible to share the similar knowledge").

use crate::worker_selection::matrix::{DenseMatrix, SparseObservations};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// PMF hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PmfParams {
    /// Latent dimensionality d.
    pub dims: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Worker-factor regulariser λ_W.
    pub lambda_w: f64,
    /// Landmark-factor regulariser λ_L.
    pub lambda_l: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for PmfParams {
    fn default() -> Self {
        PmfParams {
            dims: 8,
            epochs: 120,
            learning_rate: 0.02,
            lambda_w: 0.05,
            lambda_l: 0.05,
            seed: 7,
        }
    }
}

/// A fitted factorisation.
#[derive(Debug, Clone)]
pub struct PmfModel {
    dims: usize,
    /// Worker factors, row-major `n × d`.
    w: Vec<f64>,
    /// Landmark factors, row-major `m × d`.
    l: Vec<f64>,
    /// Global mean of the observations; factors model the residual. This
    /// anchors predictions so PMF can never do worse than the mean
    /// baseline in expectation, even at extreme sparsity.
    mean: f64,
    n: usize,
    m: usize,
}

impl PmfModel {
    /// Fits PMF to the observations. `n`/`m` are the full matrix
    /// dimensions (workers × landmarks).
    pub fn fit(obs: &SparseObservations, n: usize, m: usize, params: &PmfParams) -> PmfModel {
        let d = params.dims.max(1);
        let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x94D0_49BB_1331_11EB);
        let mut w = vec![0.0; n * d];
        let mut l = vec![0.0; m * d];
        for v in w.iter_mut().chain(l.iter_mut()) {
            *v = rng.random_range(-0.1..0.1);
        }
        let mean = if obs.is_empty() {
            0.0
        } else {
            obs.entries.iter().map(|&(_, _, v)| v).sum::<f64>() / obs.len() as f64
        };
        let lr = params.learning_rate;
        for _ in 0..params.epochs {
            for &(wi, lj, value) in &obs.entries {
                let (wi, lj) = (wi as usize, lj as usize);
                let wrow = wi * d;
                let lrow = lj * d;
                let mut pred = mean;
                for k in 0..d {
                    pred += w[wrow + k] * l[lrow + k];
                }
                let err = value - pred;
                for k in 0..d {
                    let wk = w[wrow + k];
                    let lk = l[lrow + k];
                    w[wrow + k] += lr * (err * lk - params.lambda_w * wk);
                    l[lrow + k] += lr * (err * wk - params.lambda_l * lk);
                }
            }
        }
        PmfModel {
            dims: d,
            w,
            l,
            mean,
            n,
            m,
        }
    }

    /// Predicted familiarity of worker `i` with landmark `j`, floored at 0
    /// (familiarity scores are non-negative by definition).
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.m);
        let mut p = self.mean;
        for k in 0..self.dims {
            p += self.w[i * self.dims + k] * self.l[j * self.dims + k];
        }
        p.max(0.0)
    }

    /// Materialises the full predicted matrix `M'`, keeping observed
    /// entries at their observed values (the paper infers only the
    /// *missing* scores; observations are trusted).
    pub fn densify(&self, obs: &SparseObservations) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n, self.m);
        for i in 0..self.n {
            for j in 0..self.m {
                out.set(i, j, self.predict(i, j));
            }
        }
        for &(i, j, v) in &obs.entries {
            out.set(i as usize, j as usize, v);
        }
        out
    }

    /// Root-mean-square error against a set of held-out observations.
    pub fn rmse(&self, held_out: &SparseObservations) -> f64 {
        if held_out.is_empty() {
            return 0.0;
        }
        let se: f64 = held_out
            .entries
            .iter()
            .map(|&(i, j, v)| {
                let e = v - self.predict(i as usize, j as usize);
                e * e
            })
            .sum();
        (se / held_out.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a rank-2 ground-truth matrix and samples observations.
    fn synthetic(
        n: usize,
        m: usize,
        density: f64,
        seed: u64,
    ) -> (Vec<f64>, SparseObservations, SparseObservations) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let wf: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let lf: Vec<(f64, f64)> = (0..m)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let mut truth = vec![0.0; n * m];
        let mut train = SparseObservations::default();
        let mut test = SparseObservations::default();
        for i in 0..n {
            for j in 0..m {
                let v = wf[i].0 * lf[j].0 + wf[i].1 * lf[j].1;
                truth[i * m + j] = v;
                if rng.random_bool(density) {
                    train.push(i as u32, j as u32, v);
                } else if rng.random_bool(0.2) {
                    test.push(i as u32, j as u32, v);
                }
            }
        }
        (truth, train, test)
    }

    #[test]
    fn reconstructs_low_rank_structure() {
        let (_, train, test) = synthetic(40, 50, 0.3, 3);
        let model = PmfModel::fit(&train, 40, 50, &PmfParams::default());
        let train_rmse = model.rmse(&train);
        let test_rmse = model.rmse(&test);
        assert!(train_rmse < 0.15, "train RMSE {train_rmse}");
        assert!(test_rmse < 0.2, "held-out RMSE {test_rmse}");
    }

    #[test]
    fn beats_zero_baseline_on_held_out() {
        let (_, train, test) = synthetic(30, 40, 0.25, 9);
        let model = PmfModel::fit(&train, 30, 40, &PmfParams::default());
        let zero_rmse = {
            let se: f64 = test.entries.iter().map(|&(_, _, v)| v * v).sum();
            (se / test.len() as f64).sqrt()
        };
        assert!(model.rmse(&test) < zero_rmse);
    }

    #[test]
    fn densify_preserves_observations() {
        let (_, train, _) = synthetic(10, 12, 0.4, 1);
        let model = PmfModel::fit(&train, 10, 12, &PmfParams::default());
        let dense = model.densify(&train);
        for &(i, j, v) in &train.entries {
            assert_eq!(dense.get(i as usize, j as usize), v);
        }
        assert_eq!(dense.rows(), 10);
        assert_eq!(dense.cols(), 12);
    }

    #[test]
    fn predictions_are_nonnegative() {
        let (_, train, _) = synthetic(15, 15, 0.3, 5);
        let model = PmfModel::fit(&train, 15, 15, &PmfParams::default());
        for i in 0..15 {
            for j in 0..15 {
                assert!(model.predict(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, train, _) = synthetic(12, 12, 0.4, 2);
        let a = PmfModel::fit(&train, 12, 12, &PmfParams::default());
        let b = PmfModel::fit(&train, 12, 12, &PmfParams::default());
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(a.predict(i, j), b.predict(i, j));
            }
        }
    }

    #[test]
    fn empty_observations_yield_zero_predictions() {
        let model = PmfModel::fit(&SparseObservations::default(), 5, 5, &PmfParams::default());
        // With no data the mean offset is 0 and the factors stay near
        // their tiny random init; the clamped predictions are ~0.
        for i in 0..5 {
            for j in 0..5 {
                assert!(model.predict(i, j) < 0.05);
            }
        }
        assert_eq!(model.rmse(&SparseObservations::default()), 0.0);
    }

    #[test]
    fn more_dims_do_not_hurt_much() {
        let (_, train, test) = synthetic(30, 30, 0.35, 11);
        let small = PmfModel::fit(
            &train,
            30,
            30,
            &PmfParams {
                dims: 2,
                ..PmfParams::default()
            },
        );
        let big = PmfModel::fit(
            &train,
            30,
            30,
            &PmfParams {
                dims: 16,
                ..PmfParams::default()
            },
        );
        // Regularisation keeps the larger model competitive (within 2x).
        assert!(big.rmse(&test) <= small.rmse(&test) * 2.0 + 0.05);
    }
}
