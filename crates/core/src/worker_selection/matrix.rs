//! Dense worker×landmark score matrices.

/// A dense row-major matrix of f64 scores.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows (workers).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (landmarks).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&v| v != 0.0).count() as f64 / self.data.len() as f64
    }
}

/// A sparse list of observed `(row, col, value)` entries.
#[derive(Debug, Clone, Default)]
pub struct SparseObservations {
    /// Observed entries.
    pub entries: Vec<(u32, u32, f64)>,
}

impl SparseObservations {
    /// Adds an observation.
    pub fn push(&mut self, row: u32, col: u32, value: f64) {
        self.entries.push((row, col, value));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no observations exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 1.5);
        assert_eq!(m.get(2, 3), 1.5);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 1.5]);
    }

    #[test]
    fn density_counts_nonzeros() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.density(), 0.0);
        m.set(0, 0, 1.0);
        m.set(1, 1, 2.0);
        assert_eq!(m.density(), 0.5);
        assert_eq!(DenseMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn sparse_observations_accumulate() {
        let mut s = SparseObservations::default();
        assert!(s.is_empty());
        s.push(0, 1, 0.5);
        s.push(2, 3, 0.7);
        assert_eq!(s.len(), 2);
    }
}
