//! Worker familiarity scores (paper §IV-B).
//!
//! ```text
//! f_w^l = α · exp{−(d(l, p_home) + d(l, p_work) + d(l, p_fr))}
//!       + (1−α) · (#correct + β · #wrong)
//! ```
//!
//! with the rule "assign +∞ to d(l, p∗) if d(l, p∗) is bigger than a
//! threshold η_dis" — i.e. a far-away anchor kills the whole profile term
//! (exp(−∞) = 0). Distances inside the exponent are normalised by η_dis so
//! the exponential lives on a sane scale regardless of the city's units
//! (the paper leaves units unspecified; this normalisation is recorded in
//! DESIGN.md).

use crate::config::Config;
use crate::worker_selection::matrix::SparseObservations;
use cp_crowd::Worker;
use cp_crowd::{AnswerTally, CrowdObserve};
use cp_roadnet::{Landmark, LandmarkSet};

/// Profile-only familiarity term in `[0, 1]`.
pub fn profile_familiarity(worker: &Worker, landmark: &Landmark, eta_dis: f64) -> f64 {
    let dh = worker.home.distance(&landmark.position);
    let dw = worker.work.distance(&landmark.position);
    let df = worker.frequent.distance(&landmark.position);
    if dh > eta_dis || dw > eta_dis || df > eta_dis {
        // d(l, p*) := +∞ ⇒ exp(−∞) = 0.
        return 0.0;
    }
    (-(dh + dw + df) / eta_dis).exp()
}

/// History term `#correct + β·#wrong`.
pub fn history_familiarity(tally: AnswerTally, beta: f64) -> f64 {
    tally.correct as f64 + beta * tally.wrong as f64
}

/// The combined familiarity score `f_w^l`.
pub fn familiarity_score(
    worker: &Worker,
    landmark: &Landmark,
    tally: AnswerTally,
    cfg: &Config,
) -> f64 {
    cfg.alpha * profile_familiarity(worker, landmark, cfg.eta_dis)
        + (1.0 - cfg.alpha) * history_familiarity(tally, cfg.beta)
}

/// Builds the sparse observed worker×landmark familiarity matrix `M`
/// (paper: "a n∗m matrix M with m_ij = f^{l_j}_{w_i}"; only non-zero
/// scores count as observed — "M is very sparse").
pub fn observed_matrix<C: CrowdObserve + ?Sized>(
    crowd: &C,
    landmarks: &LandmarkSet,
    cfg: &Config,
) -> SparseObservations {
    let mut obs = SparseObservations::default();
    for worker in crowd.population().iter() {
        // History entries (sparse per worker).
        let history = crowd.worker_history(worker.id);
        let mut hist_iter = history.iter().peekable();
        for lm in landmarks.iter() {
            let tally = match hist_iter.peek() {
                Some(&&(l, t)) if l == lm.id => {
                    hist_iter.next();
                    t
                }
                _ => AnswerTally::default(),
            };
            let f = familiarity_score(worker, lm, tally, cfg);
            if f > 0.0 {
                obs.push(worker.id.0, lm.id.0, f);
            }
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_crowd::{AnswerModel, Platform, PopulationParams, WorkerPopulation};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn setup() -> (LandmarkSet, Platform, Config) {
        let city = generate_city(&CityParams::small(), 61).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 61);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 61);
        let platform = Platform::new(pop, AnswerModel::default(), 61);
        (lms, platform, Config::default())
    }

    #[test]
    fn profile_zero_beyond_eta_dis() {
        let (lms, platform, cfg) = setup();
        let w = platform.population().iter().next().unwrap();
        // A landmark farther than eta_dis from every anchor must score 0.
        for lm in lms.iter() {
            if w.min_anchor_distance(&lm.position) > cfg.eta_dis {
                assert_eq!(profile_familiarity(w, lm, cfg.eta_dis), 0.0);
            }
        }
    }

    #[test]
    fn profile_positive_only_when_all_anchors_near() {
        let (lms, platform, cfg) = setup();
        let mut positives = 0;
        for w in platform.population().iter() {
            for lm in lms.iter() {
                let p = profile_familiarity(w, lm, cfg.eta_dis);
                assert!((0.0..=1.0).contains(&p));
                if p > 0.0 {
                    positives += 1;
                    let dh = w.home.distance(&lm.position);
                    let dw = w.work.distance(&lm.position);
                    let df = w.frequent.distance(&lm.position);
                    assert!(dh <= cfg.eta_dis && dw <= cfg.eta_dis && df <= cfg.eta_dis);
                }
            }
        }
        assert!(positives > 0, "some workers must know some landmarks");
    }

    #[test]
    fn history_term_weights_wrong_answers_less() {
        let t = AnswerTally {
            correct: 3,
            wrong: 2,
        };
        let h = history_familiarity(t, 0.3);
        assert!((h - (3.0 + 0.6)).abs() < 1e-12);
        assert!(history_familiarity(t, 0.3) < history_familiarity(t, 0.9));
    }

    #[test]
    fn combined_score_mixes_terms_by_alpha() {
        let (lms, platform, mut cfg) = setup();
        let w = platform.population().iter().next().unwrap();
        let lm = lms.iter().next().unwrap();
        let t = AnswerTally {
            correct: 2,
            wrong: 0,
        };
        cfg.alpha = 1.0;
        let only_profile = familiarity_score(w, lm, t, &cfg);
        assert!((only_profile - profile_familiarity(w, lm, cfg.eta_dis)).abs() < 1e-12);
        cfg.alpha = 0.0;
        let only_history = familiarity_score(w, lm, t, &cfg);
        assert!((only_history - 2.0).abs() < 1e-12);
    }

    #[test]
    fn observed_matrix_is_sparse_but_nonempty() {
        let (lms, mut platform, cfg) = setup();
        platform.warm_up(&lms, 5);
        let obs = observed_matrix(&platform, &lms, &cfg);
        assert!(!obs.is_empty());
        let total = platform.population().len() * lms.len();
        assert!(
            obs.len() < total,
            "matrix should be sparse: {} of {total}",
            obs.len()
        );
        for &(w, l, f) in &obs.entries {
            assert!((w as usize) < platform.population().len());
            assert!((l as usize) < lms.len());
            assert!(f > 0.0);
        }
    }

    #[test]
    fn history_makes_scores_grow() {
        let (lms, mut platform, cfg) = setup();
        let before = observed_matrix(&platform, &lms, &cfg).len();
        platform.warm_up(&lms, 20);
        let after = observed_matrix(&platform, &lms, &cfg).len();
        assert!(after > before, "history adds observed entries");
    }
}
