//! Rated-voting top-k worker selection (paper §IV-C).
//!
//! Summing accumulated familiarity across the task's landmarks biases
//! selection toward narrow specialists (the paper's w₁/w₂ example), so the
//! paper adopts a rated voting system: every task landmark is a *voter*,
//! every candidate worker an *option*. Landmark `lⱼ` ranks the candidate
//! workers with positive accumulated score `F` descending and gives worker
//! `w` the preference
//!
//! ```text
//! p_{lⱼ}(w) = 1 − (rank(w) − 1) / |W_{lⱼ}|   (0 if F = 0)
//! ```
//!
//! The k workers with the largest summed preference win — rewarding broad
//! coverage of the task's landmarks over a single deep score.

use crate::worker_selection::matrix::DenseMatrix;
use cp_crowd::WorkerId;
use cp_roadnet::LandmarkId;

/// Computes the summed preference score of each candidate over the task
/// landmarks. Returns `(worker, score)` pairs in descending score order
/// (ties broken by worker id for determinism).
pub fn preference_scores(
    candidates: &[WorkerId],
    task_landmarks: &[LandmarkId],
    accumulated: &DenseMatrix,
) -> Vec<(WorkerId, f64)> {
    let mut totals: Vec<f64> = vec![0.0; candidates.len()];
    let mut ranked: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
    for &l in task_landmarks {
        // W_l: candidates with positive accumulated familiarity for l.
        ranked.clear();
        for (ci, &w) in candidates.iter().enumerate() {
            let f = accumulated.get(w.index(), l.index());
            if f > 0.0 {
                ranked.push((ci, f));
            }
        }
        if ranked.is_empty() {
            continue;
        }
        // Rank descending by F; ties by worker id ascending.
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| candidates[a.0].cmp(&candidates[b.0]))
        });
        let size = ranked.len() as f64;
        for (rank, &(ci, _)) in ranked.iter().enumerate() {
            totals[ci] += 1.0 - rank as f64 / size;
        }
    }
    let mut out: Vec<(WorkerId, f64)> = candidates.iter().copied().zip(totals).collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

/// Selects the top-k eligible workers by rated voting.
pub fn top_k_workers(
    candidates: &[WorkerId],
    task_landmarks: &[LandmarkId],
    accumulated: &DenseMatrix,
    k: usize,
) -> Vec<WorkerId> {
    preference_scores(candidates, task_landmarks, accumulated)
        .into_iter()
        .take(k)
        .map(|(w, _)| w)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(i: u32) -> WorkerId {
        WorkerId(i)
    }

    fn lid(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn paper_coverage_example() {
        // The paper's example: ten landmarks; w1 knows only l1 very well
        // (F=2), w2 knows all ten a little (F=0.1 each). Rated voting must
        // prefer w2.
        let mut m = DenseMatrix::zeros(2, 10);
        m.set(0, 0, 2.0);
        for j in 0..10 {
            m.set(1, j, 0.1);
        }
        let candidates = [wid(0), wid(1)];
        let lms: Vec<LandmarkId> = (0..10).map(lid).collect();
        let scores = preference_scores(&candidates, &lms, &m);
        assert_eq!(scores[0].0, wid(1), "broad coverage must win");
        let top = top_k_workers(&candidates, &lms, &m, 1);
        assert_eq!(top, vec![wid(1)]);
    }

    #[test]
    fn preference_formula_matches_paper() {
        // Three candidates on one landmark with distinct scores: the ranks
        // give preferences 1, 1−1/3, 1−2/3.
        let mut m = DenseMatrix::zeros(3, 1);
        m.set(0, 0, 0.9);
        m.set(1, 0, 0.5);
        m.set(2, 0, 0.1);
        let scores = preference_scores(&[wid(0), wid(1), wid(2)], &[lid(0)], &m);
        assert_eq!(scores[0].0, wid(0));
        assert!((scores[0].1 - 1.0).abs() < 1e-12);
        assert!((scores[1].1 - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert!((scores[2].1 - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_scores_get_no_preference() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 0, 1.0);
        // Worker 1 knows nothing.
        let scores = preference_scores(&[wid(0), wid(1)], &[lid(0), lid(1)], &m);
        let w1 = scores.iter().find(|(w, _)| *w == wid(1)).unwrap();
        assert_eq!(w1.1, 0.0);
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let m = DenseMatrix::zeros(2, 1);
        let top = top_k_workers(&[wid(0), wid(1)], &[lid(0)], &m, 10);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut m = DenseMatrix::zeros(3, 1);
        for i in 0..3 {
            m.set(i, 0, 0.5);
        }
        let scores = preference_scores(&[wid(2), wid(0), wid(1)], &[lid(0)], &m);
        // Equal F: ranking by worker id ascending, so w0 ranks first.
        assert_eq!(scores[0].0, wid(0));
        assert_eq!(scores[1].0, wid(1));
        assert_eq!(scores[2].0, wid(2));
    }

    #[test]
    fn empty_inputs_are_safe() {
        let m = DenseMatrix::zeros(0, 0);
        assert!(preference_scores(&[], &[], &m).is_empty());
        assert!(top_k_workers(&[], &[], &m, 3).is_empty());
    }
}
