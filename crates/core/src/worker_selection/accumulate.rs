//! Spatial knowledge accumulation (paper §IV-B, end).
//!
//! "A worker with a familiarity score of a landmark … has some knowledge
//! about the region around the landmark, not just the landmark itself."
//! The accumulated score of landmark `lⱼ` is a Gaussian-weighted sum of
//! the worker's (densified) familiarity with every landmark within η_dis
//! of `lⱼ`:
//!
//! ```text
//! F_w^{lⱼ} = Σ_{l ∈ L_near ∪ {lⱼ}} δ_l · f_w^l,
//! δ_l = N(d(l, lⱼ) | 0, σ₀²),  σ₀ = η_dis / 3
//! ```

use crate::worker_selection::matrix::DenseMatrix;
use cp_roadnet::LandmarkSet;
use cp_traj::stats::normal_pdf;

/// Computes the accumulated familiarity matrix `M*` from the densified
/// familiarity matrix `M'` (workers × landmarks).
pub fn accumulate_scores(
    landmarks: &LandmarkSet,
    densified: &DenseMatrix,
    eta_dis: f64,
) -> DenseMatrix {
    assert_eq!(densified.cols(), landmarks.len(), "one column per landmark");
    let sigma0 = eta_dis / 3.0;
    let n = densified.rows();
    let m = landmarks.len();
    // Precompute, per target landmark, its neighbourhood and weights.
    let mut neighbourhoods: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    for j in 0..m {
        let lj = landmarks.get(cp_roadnet::LandmarkId(j as u32));
        let near = landmarks.within_radius(&lj.position, eta_dis);
        let mut weighted = Vec::with_capacity(near.len());
        for id in near {
            let d = landmarks.get(id).position.distance(&lj.position);
            weighted.push((id.index(), normal_pdf(d, 0.0, sigma0)));
        }
        neighbourhoods.push(weighted);
    }
    let mut out = DenseMatrix::zeros(n, m);
    for w in 0..n {
        for (j, hood) in neighbourhoods.iter().enumerate() {
            let mut acc = 0.0;
            for &(l, delta) in hood {
                acc += delta * densified.get(w, l);
            }
            out.set(w, j, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{Landmark, LandmarkCategory, LandmarkId, LandmarkSet, NodeId, Point};

    fn lm_at(i: u32, x: f64, y: f64) -> Landmark {
        Landmark {
            id: LandmarkId(i),
            position: Point::new(x, y),
            anchor: NodeId(0),
            latent_fame: 0.5,
            category: LandmarkCategory::Food,
        }
    }

    fn line_landmarks() -> LandmarkSet {
        LandmarkSet::new(
            vec![
                lm_at(0, 0.0, 0.0),
                lm_at(1, 400.0, 0.0),
                lm_at(2, 5000.0, 0.0),
            ],
            500.0,
        )
    }

    #[test]
    fn knowledge_spreads_to_nearby_landmarks_only() {
        let lms = line_landmarks();
        let mut fam = DenseMatrix::zeros(1, 3);
        fam.set(0, 0, 1.0); // worker knows only landmark 0
        let acc = accumulate_scores(&lms, &fam, 1000.0);
        // Landmark 0 keeps the largest accumulated score.
        assert!(acc.get(0, 0) > acc.get(0, 1));
        // Landmark 1 (400 m away, inside eta_dis) receives spillover.
        assert!(acc.get(0, 1) > 0.0);
        // Landmark 2 (5 km away, outside eta_dis) receives nothing.
        assert_eq!(acc.get(0, 2), 0.0);
    }

    #[test]
    fn self_weight_is_peak_gaussian() {
        let lms = line_landmarks();
        let mut fam = DenseMatrix::zeros(1, 3);
        fam.set(0, 2, 2.0);
        let eta = 900.0;
        let acc = accumulate_scores(&lms, &fam, eta);
        let expect = 2.0 * normal_pdf(0.0, 0.0, eta / 3.0);
        assert!((acc.get(0, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn accumulation_is_linear_in_familiarity() {
        let lms = line_landmarks();
        let mut f1 = DenseMatrix::zeros(1, 3);
        f1.set(0, 0, 1.0);
        let mut f2 = DenseMatrix::zeros(1, 3);
        f2.set(0, 0, 3.0);
        let a1 = accumulate_scores(&lms, &f1, 1000.0);
        let a2 = accumulate_scores(&lms, &f2, 1000.0);
        for j in 0..3 {
            assert!((a2.get(0, j) - 3.0 * a1.get(0, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn wider_eta_dis_spreads_further() {
        let lms = LandmarkSet::new(vec![lm_at(0, 0.0, 0.0), lm_at(1, 800.0, 0.0)], 500.0);
        let mut fam = DenseMatrix::zeros(1, 2);
        fam.set(0, 0, 1.0);
        let narrow = accumulate_scores(&lms, &fam, 500.0);
        let wide = accumulate_scores(&lms, &fam, 3000.0);
        assert_eq!(narrow.get(0, 1), 0.0, "800 m > 500 m radius");
        assert!(wide.get(0, 1) > 0.0);
    }
}
