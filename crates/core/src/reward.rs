//! Worker rewarding (paper §II-B2, "rewarding component": "rewards the
//! workers according to their workload and the quality of their answers").
//!
//! Each worker earns a base amount per answered question (workload) plus a
//! bonus when their vote agreed with the final verified answer (quality).
//! Points are credited to the platform balance and "can be used later when
//! they request a route recommendation".

use crate::config::Config;

/// One worker's participation in a resolved task.
#[derive(Debug, Clone, Copy)]
pub struct Participation {
    /// Questions the worker answered.
    pub questions_answered: usize,
    /// The candidate index the worker's answers voted for (None =
    /// abstention / dead end).
    pub voted_for: Option<usize>,
}

/// Computes the reward for one participation given the final winning
/// candidate.
pub fn reward_for(participation: &Participation, winner: Option<usize>, cfg: &Config) -> f64 {
    let workload = participation.questions_answered as f64 * cfg.reward_per_question;
    let quality = match (participation.voted_for, winner) {
        (Some(v), Some(w)) if v == w => {
            participation.questions_answered as f64
                * cfg.reward_per_question
                * cfg.reward_quality_bonus
        }
        _ => 0.0,
    };
    workload + quality
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            reward_per_question: 2.0,
            reward_quality_bonus: 0.5,
            ..Config::default()
        }
    }

    #[test]
    fn workload_only_when_vote_disagrees() {
        let p = Participation {
            questions_answered: 3,
            voted_for: Some(1),
        };
        assert_eq!(reward_for(&p, Some(0), &cfg()), 6.0);
    }

    #[test]
    fn quality_bonus_when_vote_agrees() {
        let p = Participation {
            questions_answered: 3,
            voted_for: Some(0),
        };
        // 3*2 + 3*2*0.5 = 9
        assert_eq!(reward_for(&p, Some(0), &cfg()), 9.0);
    }

    #[test]
    fn abstention_earns_workload_only() {
        let p = Participation {
            questions_answered: 2,
            voted_for: None,
        };
        assert_eq!(reward_for(&p, Some(0), &cfg()), 4.0);
        assert_eq!(reward_for(&p, None, &cfg()), 4.0);
    }

    #[test]
    fn zero_questions_zero_reward() {
        let p = Participation {
            questions_answered: 0,
            voted_for: Some(0),
        };
        assert_eq!(reward_for(&p, Some(0), &cfg()), 0.0);
    }
}
