//! Automatic route evaluation (paper §II-B1, "route evaluation
//! component").
//!
//! Before spending any crowd effort, the TR module tries to settle the
//! request itself:
//!
//! 1. **agreement** — "if some of these routes agree with each other to a
//!    high degree, one of them will be selected as the best recommended
//!    route": we cluster the candidates by pairwise length-weighted edge
//!    Jaccard similarity and accept when a cluster holds at least the
//!    configured quorum of sources;
//! 2. **confidence** — otherwise each candidate gets a confidence score
//!    derived from the verified truths near the OD pair (its best
//!    similarity to any nearby truth); a candidate whose confidence clears
//!    η wins;
//! 3. otherwise the request falls through to the crowd module.

use crate::config::Config;
use crate::truth::TruthStore;
use cp_mining::CandidateRoute;
use cp_roadnet::{edge_jaccard, NodeId, Path, RoadGraph};

/// Outcome of the automatic evaluation.
#[derive(Debug, Clone)]
pub enum Evaluation {
    /// Enough sources agree on (essentially) one route.
    Agreement {
        /// The representative route of the agreeing cluster.
        path: Path,
        /// Number of sources in the agreeing cluster.
        supporters: usize,
    },
    /// A candidate is sufficiently similar to nearby verified truths.
    Confident {
        /// The confident candidate.
        path: Path,
        /// Its confidence score.
        confidence: f64,
    },
    /// The machine cannot decide; candidates (with confidence scores in
    /// candidate order) go to the crowd.
    Undecided {
        /// Per-candidate confidence scores for ID3 priors.
        confidences: Vec<f64>,
    },
}

/// Runs the evaluation.
pub fn evaluate_candidates(
    graph: &RoadGraph,
    candidates: &[CandidateRoute],
    truths: &TruthStore,
    from: NodeId,
    to: NodeId,
    cfg: &Config,
) -> Evaluation {
    // --- Stage 1: agreement clustering ---
    // Greedy clustering by similarity to the cluster representative.
    let n = candidates.len();
    if n > 0 {
        let mut assigned = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            let mut placed = false;
            for (ci, &rep) in reps.iter().enumerate() {
                if edge_jaccard(graph, &candidates[i].path, &candidates[rep].path)
                    >= cfg.agreement_similarity
                {
                    assigned[i] = ci;
                    placed = true;
                    break;
                }
            }
            if !placed {
                assigned[i] = reps.len();
                reps.push(i);
            }
        }
        let mut counts = vec![0usize; reps.len()];
        for &c in &assigned {
            counts[c] += 1;
        }
        if let Some((ci, &count)) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(ci, &c)| (c, std::cmp::Reverse(ci)))
        {
            if count as f64 >= cfg.agreement_quorum * n as f64 && count >= 2 {
                return Evaluation::Agreement {
                    path: candidates[reps[ci]].path.clone(),
                    supporters: count,
                };
            }
        }
    }

    // --- Stage 2: truth-derived confidence ---
    let nearby = truths.nearby(graph, from, to, cfg.reuse_radius * 3.0);
    let confidences: Vec<f64> = candidates
        .iter()
        .map(|c| {
            nearby
                .iter()
                .map(|t| edge_jaccard(graph, &c.path, &t.path) * t.confidence)
                .fold(0.0f64, f64::max)
        })
        .collect();
    if let Some((best_i, &best_c)) = confidences
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        if best_c >= cfg.eta_confidence {
            return Evaluation::Confident {
                path: candidates[best_i].path.clone(),
                confidence: best_c,
            };
        }
    }
    Evaluation::Undecided { confidences }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthEntry;
    use cp_mining::SourceKind;
    use cp_roadnet::routing::{dijkstra_path, distance_cost, time_cost};
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::TimeOfDay;

    fn setup() -> (cp_roadnet::City, Config) {
        (
            generate_city(&CityParams::small(), 79).unwrap(),
            Config::default(),
        )
    }

    fn cand(source: SourceKind, path: Path) -> CandidateRoute {
        CandidateRoute { source, path }
    }

    fn short(city: &cp_roadnet::City, a: u32, b: u32) -> Path {
        dijkstra_path(
            &city.graph,
            NodeId(a),
            NodeId(b),
            distance_cost(&city.graph),
        )
        .unwrap()
    }

    fn fast(city: &cp_roadnet::City, a: u32, b: u32) -> Path {
        dijkstra_path(&city.graph, NodeId(a), NodeId(b), time_cost(&city.graph)).unwrap()
    }

    #[test]
    fn identical_candidates_trigger_agreement() {
        let (city, cfg) = setup();
        let p = short(&city, 0, 59);
        let cands = vec![
            cand(SourceKind::ShortestWebService, p.clone()),
            cand(SourceKind::Mpr, p.clone()),
            cand(SourceKind::Mfp, p.clone()),
        ];
        match evaluate_candidates(
            &city.graph,
            &cands,
            &TruthStore::new(),
            NodeId(0),
            NodeId(59),
            &cfg,
        ) {
            Evaluation::Agreement { path, supporters } => {
                assert_eq!(path, p);
                assert_eq!(supporters, 3);
            }
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn split_candidates_without_truths_are_undecided() {
        let (city, cfg) = setup();
        let a = short(&city, 0, 59);
        let b = fast(&city, 0, 59);
        if a == b {
            return; // degenerate city; covered by other seeds
        }
        let cands = vec![
            cand(SourceKind::ShortestWebService, a),
            cand(SourceKind::FastestWebService, b),
        ];
        match evaluate_candidates(
            &city.graph,
            &cands,
            &TruthStore::new(),
            NodeId(0),
            NodeId(59),
            &cfg,
        ) {
            Evaluation::Undecided { confidences } => {
                assert_eq!(confidences.len(), 2);
                assert!(confidences.iter().all(|&c| c == 0.0));
            }
            other => panic!("expected undecided, got {other:?}"),
        }
    }

    #[test]
    fn matching_truth_gives_confident_verdict() {
        let (city, cfg) = setup();
        let a = short(&city, 0, 59);
        let b = fast(&city, 0, 59);
        if a == b {
            return;
        }
        let mut truths = TruthStore::new();
        truths.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(9.0),
                path: a.clone(),
                confidence: 1.0,
            },
        );
        let cands = vec![
            cand(SourceKind::ShortestWebService, a.clone()),
            cand(SourceKind::FastestWebService, b),
        ];
        match evaluate_candidates(&city.graph, &cands, &truths, NodeId(0), NodeId(59), &cfg) {
            Evaluation::Confident { path, confidence } => {
                assert_eq!(path, a);
                assert!(confidence >= cfg.eta_confidence);
            }
            other => panic!("expected confident, got {other:?}"),
        }
    }

    #[test]
    fn empty_candidates_are_undecided() {
        let (city, cfg) = setup();
        match evaluate_candidates(
            &city.graph,
            &[],
            &TruthStore::new(),
            NodeId(0),
            NodeId(1),
            &cfg,
        ) {
            Evaluation::Undecided { confidences } => assert!(confidences.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quorum_threshold_matters() {
        let (city, mut cfg) = setup();
        let a = short(&city, 0, 59);
        let b = fast(&city, 0, 59);
        if a == b {
            return;
        }
        // 2 identical + 2 different with quorum 0.75 → no agreement.
        cfg.agreement_quorum = 0.75;
        let cands = vec![
            cand(SourceKind::ShortestWebService, a.clone()),
            cand(SourceKind::Mpr, a.clone()),
            cand(SourceKind::FastestWebService, b.clone()),
            cand(SourceKind::Mfp, b.clone()),
        ];
        match evaluate_candidates(
            &city.graph,
            &cands,
            &TruthStore::new(),
            NodeId(0),
            NodeId(59),
            &cfg,
        ) {
            Evaluation::Undecided { .. } => {}
            other => panic!("expected undecided at quorum 0.75, got {other:?}"),
        }
        // Lower the quorum to 0.5 → agreement on one of the pairs.
        cfg.agreement_quorum = 0.5;
        match evaluate_candidates(
            &city.graph,
            &cands,
            &TruthStore::new(),
            NodeId(0),
            NodeId(59),
            &cfg,
        ) {
            Evaluation::Agreement { supporters, .. } => assert_eq!(supporters, 2),
            other => panic!("expected agreement at quorum 0.5, got {other:?}"),
        }
    }
}
