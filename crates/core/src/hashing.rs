//! A fast, non-cryptographic hasher for the hot-path grid indexes.
//!
//! The truth grid resolves a lookup by probing a neighbourhood of cell
//! keys; with the std `SipHash` the probes themselves dominate lookup
//! cost. This is the well-known `FxHash` mix (rustc's internal hasher):
//! a multiply-rotate over machine words — perfect for the small integer
//! tuple keys the grid uses, and DoS resistance is irrelevant for an
//! in-process spatial index.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-mixing hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let mut map: FxHashMap<(i32, i32, i32, i32, u16), u32> = FxHashMap::default();
        for i in 0..1000i32 {
            map.insert((i, -i, i * 3, i % 7, (i % 12) as u16), i as u32);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000i32 {
            assert_eq!(
                map.get(&(i, -i, i * 3, i % 7, (i % 12) as u16)),
                Some(&(i as u32))
            );
        }
    }

    #[test]
    fn partial_tail_bytes_hash_differently() {
        use std::hash::Hash;
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            bytes.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
    }
}
