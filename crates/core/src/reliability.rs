//! Source-quality control — the paper's stated future work.
//!
//! The conclusion names "quality control of popular route mining
//! algorithms" as an open direction: the system sees, for every
//! crowd-verified request, which sources proposed the verified route, so
//! it can *learn* each source's reliability instead of trusting them
//! equally. We maintain a Beta-Bernoulli posterior per source (successes =
//! times the source's candidate matched the verified truth), seeded with a
//! mild prior that encodes the paper's own finding (MFP strongest). The
//! posterior mean orders sources whenever the machine must break a tie —
//! most importantly in the fallback path when the crowd cannot verify.

use cp_mining::SourceKind;

/// Beta-Bernoulli reliability tracker per candidate source.
#[derive(Debug, Clone)]
pub struct SourceReliability {
    /// `(successes + prior_alpha, failures + prior_beta)` per source,
    /// indexed by [`SourceKind::ALL`] order.
    counts: [(f64, f64); 5],
}

impl Default for SourceReliability {
    fn default() -> Self {
        Self::with_paper_prior()
    }
}

impl SourceReliability {
    /// Uniform prior: every source starts at Beta(1, 1).
    pub fn uninformed() -> Self {
        SourceReliability {
            counts: [(1.0, 1.0); 5],
        }
    }

    /// Prior encoding the paper's conclusion ordering (MFP strongest,
    /// shortest-distance weakest). Equivalent to a handful of
    /// pseudo-observations — quickly washed out by real verdicts.
    pub fn with_paper_prior() -> Self {
        let prior = |s: SourceKind| match s {
            SourceKind::Mfp => (3.0, 1.0),
            SourceKind::Ldr => (2.0, 1.5),
            SourceKind::Mpr => (2.0, 2.0),
            SourceKind::FastestWebService => (1.5, 2.0),
            SourceKind::ShortestWebService => (1.0, 3.0),
        };
        let mut counts = [(0.0, 0.0); 5];
        for (i, s) in SourceKind::ALL.iter().enumerate() {
            counts[i] = prior(*s);
        }
        SourceReliability { counts }
    }

    fn idx(s: SourceKind) -> usize {
        SourceKind::ALL
            .iter()
            .position(|&x| x == s)
            .expect("all kinds listed")
    }

    /// Records the outcome of one verified request: `proposed_winner` is
    /// whether this source's candidate matched the verified route.
    pub fn record(&mut self, source: SourceKind, proposed_winner: bool) {
        let c = &mut self.counts[Self::idx(source)];
        if proposed_winner {
            c.0 += 1.0;
        } else {
            c.1 += 1.0;
        }
    }

    /// Posterior-mean reliability of a source, in `(0, 1)`.
    pub fn score(&self, source: SourceKind) -> f64 {
        let (a, b) = self.counts[Self::idx(source)];
        a / (a + b)
    }

    /// Total real observations recorded for a source (excludes the prior
    /// pseudo-counts relative to [`Self::with_paper_prior`]).
    pub fn observations(&self, source: SourceKind) -> f64 {
        let (a, b) = self.counts[Self::idx(source)];
        let (pa, pb) = Self::with_paper_prior().counts[Self::idx(source)];
        (a - pa) + (b - pb)
    }

    /// The best reliability among `sources` (used to rank a deduplicated
    /// candidate proposed by several sources).
    pub fn best_of(&self, sources: &[SourceKind]) -> f64 {
        sources
            .iter()
            .map(|&s| self.score(s))
            .fold(0.0f64, f64::max)
    }

    /// Sources ranked by posterior reliability, best first.
    pub fn ranking(&self) -> Vec<(SourceKind, f64)> {
        let mut out: Vec<(SourceKind, f64)> = SourceKind::ALL
            .iter()
            .map(|&s| (s, self.score(s)))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prior_orders_mfp_first() {
        let r = SourceReliability::with_paper_prior();
        let ranking = r.ranking();
        assert_eq!(ranking[0].0, SourceKind::Mfp);
        assert_eq!(ranking.last().unwrap().0, SourceKind::ShortestWebService);
    }

    #[test]
    fn uninformed_prior_is_flat() {
        let r = SourceReliability::uninformed();
        for s in SourceKind::ALL {
            assert!((r.score(s) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn evidence_overrides_the_prior() {
        let mut r = SourceReliability::with_paper_prior();
        // Shortest starts last; feed it 50 wins while MFP takes 50 losses.
        for _ in 0..50 {
            r.record(SourceKind::ShortestWebService, true);
            r.record(SourceKind::Mfp, false);
        }
        assert!(r.score(SourceKind::ShortestWebService) > r.score(SourceKind::Mfp));
        assert_eq!(r.ranking()[0].0, SourceKind::ShortestWebService);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let mut r = SourceReliability::default();
        for i in 0..200 {
            r.record(SourceKind::Mpr, i % 3 == 0);
        }
        for s in SourceKind::ALL {
            let v = r.score(s);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn observations_count_real_records_only() {
        let mut r = SourceReliability::default();
        assert_eq!(r.observations(SourceKind::Mfp), 0.0);
        r.record(SourceKind::Mfp, true);
        r.record(SourceKind::Mfp, false);
        assert_eq!(r.observations(SourceKind::Mfp), 2.0);
    }

    #[test]
    fn best_of_takes_the_max() {
        let r = SourceReliability::with_paper_prior();
        let both = [SourceKind::ShortestWebService, SourceKind::Mfp];
        assert!((r.best_of(&both) - r.score(SourceKind::Mfp)).abs() < 1e-12);
        assert_eq!(r.best_of(&[]), 0.0);
    }
}
