//! The CrowdPlanner system orchestrator (paper §II-B, "control logic
//! component").
//!
//! Request lifecycle, exactly as in Fig. 1 of the paper:
//!
//! 1. **reuse truth** — if a verified truth covers the request, return it;
//! 2. **generate routes** — collect candidates from the five sources;
//! 3. **evaluate routes** — agreement / truth-derived confidence; if the
//!    machine can decide, record a truth and return;
//! 4. **crowd** — generate a task (landmark selection + ID3 ordering),
//!    select the top-k eligible workers, collect answers with early stop,
//!    reward workers, record the verified truth, and return.
//!
//! The crowd's collective knowledge enters through an *oracle* closure
//! supplied per request: `oracle(l)` is the true answer to "does the best
//! route pass landmark l?". In the full simulation the oracle is derived
//! from the consensus driver preference — the system itself never sees it
//! except through noisy worker answers.

use crate::config::Config;
use crate::early_stop::{EarlyStop, StopDecision};
use crate::error::CoreError;
use crate::evaluation::{evaluate_candidates, Evaluation};
use crate::reliability::SourceReliability;
use crate::reward::{reward_for, Participation};
use crate::route::LandmarkRoute;
use crate::taskgen::{generate_task, SelectionAlgorithm, Task};
use crate::truth::{TruthEntry, TruthStore};
use crate::worker_selection::{select_workers_scored, KnowledgeModel};
use cp_crowd::Platform;
use cp_mining::{distinct_candidates, CandidateGenerator, SourceKind};
use cp_roadnet::{LandmarkId, LandmarkSet, NodeId, Path, RoadGraph};
use cp_traj::{CalibrationParams, TimeOfDay, Trip};

/// How a request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Served from the truth store.
    ReusedTruth,
    /// Sources agreed; no crowd needed.
    Agreement,
    /// Truth-derived confidence cleared η; no crowd needed.
    Confident,
    /// Crowd-verified.
    Crowd,
    /// Crowd was needed but could not verify (no eligible workers /
    /// no usable votes); fell back to the best machine guess.
    Fallback,
}

/// A resolved recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended route.
    pub path: Path,
    /// How it was resolved.
    pub resolution: Resolution,
    /// Total questions answered by all workers for this request.
    pub questions_asked: usize,
    /// Workers who participated.
    pub workers_asked: usize,
    /// Confidence of the answer (1.0 for reuse hits and agreements).
    pub confidence: f64,
}

/// Running system statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Requests served.
    pub requests: usize,
    /// Truth-store hits.
    pub reuse_hits: usize,
    /// Machine agreements.
    pub agreements: usize,
    /// Machine confidence wins.
    pub confident: usize,
    /// Crowd verifications.
    pub crowd_tasks: usize,
    /// Crowd tasks launched (including ones that ended in fallback).
    pub crowd_attempts: usize,
    /// Fallbacks.
    pub fallbacks: usize,
    /// Total questions asked across all crowd tasks.
    pub total_questions: usize,
    /// Total worker participations.
    pub total_workers: usize,
}

/// The CrowdPlanner server.
pub struct CrowdPlanner<'a> {
    graph: &'a RoadGraph,
    landmarks: &'a LandmarkSet,
    significance: Vec<f64>,
    generator: CandidateGenerator<'a>,
    platform: Platform,
    truths: TruthStore,
    knowledge: Option<KnowledgeModel>,
    cfg: Config,
    calibration: CalibrationParams,
    /// Landmark-selection algorithm used for task generation.
    pub selection_algorithm: SelectionAlgorithm,
    reliability: SourceReliability,
    stats: SystemStats,
}

impl<'a> CrowdPlanner<'a> {
    /// Builds the server.
    ///
    /// `significance` must have one entry per landmark (the HITS-inferred
    /// `l.s` scores).
    pub fn new(
        graph: &'a RoadGraph,
        landmarks: &'a LandmarkSet,
        significance: Vec<f64>,
        trips: &'a [Trip],
        platform: Platform,
        cfg: Config,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        if significance.len() != landmarks.len() {
            return Err(CoreError::SignificanceLengthMismatch {
                expected: landmarks.len(),
                actual: significance.len(),
            });
        }
        Ok(CrowdPlanner {
            graph,
            landmarks,
            significance,
            generator: CandidateGenerator::new(graph, trips),
            platform,
            truths: TruthStore::new(),
            knowledge: None,
            cfg,
            calibration: CalibrationParams::default(),
            selection_algorithm: SelectionAlgorithm::Greedy,
            reliability: SourceReliability::default(),
            stats: SystemStats::default(),
        })
    }

    /// System statistics so far.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The truth store (read access for experiments).
    pub fn truths(&self) -> &TruthStore {
        &self.truths
    }

    /// The crowd platform (read access for experiments).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The candidate generator.
    pub fn candidate_generator(&self) -> &CandidateGenerator<'a> {
        &self.generator
    }

    /// Inferred significance of a landmark.
    pub fn significance_of(&self, l: LandmarkId) -> f64 {
        self.significance[l.index()]
    }

    /// Learned per-source reliability (paper future work: "quality control
    /// of popular route mining algorithms").
    pub fn source_reliability(&self) -> &SourceReliability {
        &self.reliability
    }

    /// Lazily (re)builds the worker-knowledge model. Invalidated whenever
    /// new answers arrive (crowd tasks).
    pub fn knowledge_model(&mut self) -> &KnowledgeModel {
        if self.knowledge.is_none() {
            self.knowledge = Some(KnowledgeModel::build(
                &self.platform,
                self.landmarks,
                &self.cfg,
            ));
        }
        self.knowledge.as_ref().expect("just built")
    }

    /// Handles one route request. `oracle(l)` must answer "does the best
    /// route pass landmark l?" — the latent crowd knowledge the workers
    /// noisily report.
    pub fn handle_request(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        self.stats.requests += 1;

        // Step 1: reuse truth.
        if let Some(hit) = self
            .truths
            .lookup(self.graph, from, to, departure, &self.cfg)
        {
            self.stats.reuse_hits += 1;
            return Ok(Recommendation {
                path: hit.path.clone(),
                resolution: Resolution::ReusedTruth,
                questions_asked: 0,
                workers_asked: 0,
                confidence: hit.confidence,
            });
        }

        // Step 2: generate candidates.
        let candidates = self.generator.candidates(from, to, departure);
        if candidates.is_empty() {
            return Err(CoreError::NoCandidates);
        }

        // Step 3: machine evaluation.
        let confidences =
            match evaluate_candidates(self.graph, &candidates, &self.truths, from, to, &self.cfg) {
                Evaluation::Agreement { path, supporters } => {
                    self.stats.agreements += 1;
                    self.truths.insert(
                        self.graph,
                        TruthEntry {
                            from,
                            to,
                            departure,
                            path: path.clone(),
                            confidence: 1.0,
                        },
                    );
                    return Ok(Recommendation {
                        path,
                        resolution: Resolution::Agreement,
                        questions_asked: 0,
                        workers_asked: 0,
                        confidence: supporters as f64 / candidates.len() as f64,
                    });
                }
                Evaluation::Confident { path, confidence } => {
                    self.stats.confident += 1;
                    self.truths.insert(
                        self.graph,
                        TruthEntry {
                            from,
                            to,
                            departure,
                            path: path.clone(),
                            confidence,
                        },
                    );
                    return Ok(Recommendation {
                        path,
                        resolution: Resolution::Confident,
                        questions_asked: 0,
                        workers_asked: 0,
                        confidence,
                    });
                }
                Evaluation::Undecided { confidences } => confidences,
            };

        // Step 4: crowd.
        self.crowd_resolve(from, to, departure, candidates, confidences, oracle)
    }

    /// The CR module: task generation, worker selection, answer
    /// collection with early stop, rewarding, truth recording.
    #[allow(clippy::too_many_arguments)]
    fn crowd_resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: Vec<cp_mining::CandidateRoute>,
        confidences: Vec<f64>,
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        // Deduplicate identical paths, merging their sources; carry the
        // best machine confidence per distinct path as the ID3 prior.
        let distinct = distinct_candidates(&candidates);
        let mut paths: Vec<Path> = Vec::new();
        let mut sources: Vec<Vec<SourceKind>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for (path, srcs) in distinct {
            let conf = candidates
                .iter()
                .zip(confidences.iter())
                .filter(|(c, _)| c.path == path)
                .map(|(_, &w)| w)
                .fold(0.0f64, f64::max);
            paths.push(path);
            sources.push(srcs);
            weights.push(0.1 + conf); // smoothed prior
        }

        // Calibrate to landmark routes; merge candidates whose landmark
        // sets coincide (they are indistinguishable to workers).
        let mut routes: Vec<LandmarkRoute> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let lr = LandmarkRoute::from_path(self.graph, self.landmarks, p, &self.calibration);
            if routes.iter().all(|r| !r.same_landmark_set(&lr)) {
                routes.push(lr);
                kept.push(i);
            }
        }

        // Learned source reliability breaks confidence ties: the system's
        // Beta posterior starts from the paper's finding (MFP strongest)
        // and adapts to every crowd verdict it observes.
        let reliability: Vec<f64> = sources
            .iter()
            .map(|srcs| self.reliability.best_of(srcs))
            .collect();
        let fallback = |this: &mut Self, stats_fallback: bool| {
            // Highest machine confidence; ties broken by learned
            // reliability.
            let best = (0..paths.len())
                .max_by(|&a, &b| {
                    weights[a]
                        .partial_cmp(&weights[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            reliability[a]
                                .partial_cmp(&reliability[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .unwrap_or(0);
            if stats_fallback {
                this.stats.fallbacks += 1;
            }
            paths[best].clone()
        };

        if routes.len() < 2 {
            // Everything calibrates to one landmark route: the crowd cannot
            // distinguish candidates; return the best machine guess.
            let path = fallback(self, true);
            self.truths.insert(
                self.graph,
                TruthEntry {
                    from,
                    to,
                    departure,
                    path: path.clone(),
                    confidence: self.cfg.eta_confidence * 0.5,
                },
            );
            return Ok(Recommendation {
                path,
                resolution: Resolution::Fallback,
                questions_asked: 0,
                workers_asked: 0,
                confidence: self.cfg.eta_confidence * 0.5,
            });
        }

        let kept_weights: Vec<f64> = kept.iter().map(|&i| weights[i]).collect();
        let task: Task = generate_task(
            routes,
            &self.significance,
            self.selection_algorithm,
            self.cfg.selection_budget,
            Some(&kept_weights),
        )?;
        let question_landmarks: Vec<LandmarkId> = task.questions.iter().map(|&(l, _)| l).collect();

        // Worker selection.
        self.knowledge_model();
        let knowledge = self.knowledge.as_ref().expect("built above");
        let workers = match select_workers_scored(
            &self.platform,
            knowledge,
            &question_landmarks,
            &self.cfg,
        ) {
            Ok(w) => w,
            Err(CoreError::NoEligibleWorkers) => {
                let path = fallback(self, true);
                self.truths.insert(
                    self.graph,
                    TruthEntry {
                        from,
                        to,
                        departure,
                        path: path.clone(),
                        confidence: self.cfg.eta_confidence * 0.5,
                    },
                );
                return Ok(Recommendation {
                    path,
                    resolution: Resolution::Fallback,
                    questions_asked: 0,
                    workers_asked: 0,
                    confidence: self.cfg.eta_confidence * 0.5,
                });
            }
            Err(e) => return Err(e),
        };

        // Answer collection with early stop.
        self.stats.crowd_attempts += 1;
        let mut aggregator = EarlyStop::new(task.routes.len());
        let mut participations: Vec<(cp_crowd::WorkerId, Participation)> = Vec::new();
        let mut questions_total = 0usize;
        // Normalise preference scores into vote weights with mean ~1.
        let score_sum: f64 = workers.iter().map(|&(_, s)| s).sum();
        let weight_of = |s: f64| {
            if score_sum > 0.0 {
                (s * workers.len() as f64 / score_sum).max(0.1)
            } else {
                1.0
            }
        };
        for &(w, score) in &workers {
            self.platform.assign(w);
            let mut elapsed = 0.0f64;
            let mut answered = 0usize;
            let deadline = self.cfg.task_deadline;
            let platform = &mut self.platform;
            let landmarks = self.landmarks;
            let (vote, asked) = task.tree.walk_answers(|l| {
                let lm = landmarks.get(l);
                let truth = oracle(l);
                let (answer, rt) = platform.ask(w, lm, truth);
                elapsed += rt;
                answered += 1;
                answer
            });
            let on_time = elapsed <= deadline;
            questions_total += asked.len();
            let vote = if on_time { vote } else { None };
            participations.push((
                w,
                Participation {
                    questions_answered: asked.len(),
                    voted_for: vote,
                },
            ));
            aggregator.record_weighted(vote, weight_of(score));
            if let StopDecision::Stop { .. } = aggregator.decision(&self.cfg) {
                break;
            }
        }

        // Verdict: an early stop is decisive by construction; otherwise the
        // final leader must clear the verdict floor, else the crowd could
        // not verify and the machine's best guess stands.
        let verdict = match aggregator.decision(&self.cfg) {
            StopDecision::Stop { winner, confidence } => Some((winner, confidence)),
            StopDecision::Continue => aggregator
                .final_verdict()
                .filter(|&(_, c)| c >= self.cfg.verdict_floor),
        };

        // Rewards + bookkeeping.
        let winner_idx = verdict.map(|(w, _)| w);
        for (w, p) in &participations {
            let pts = reward_for(p, winner_idx, &self.cfg);
            self.platform.award(*w, pts);
            self.platform.finish(*w);
        }
        self.knowledge = None; // new answers: invalidate the model

        let workers_asked = participations.len();
        match verdict {
            Some((winner, confidence)) => {
                self.stats.crowd_tasks += 1;
                self.stats.total_questions += questions_total;
                self.stats.total_workers += workers_asked;
                let path = paths[kept[winner]].clone();
                // Source-quality control: every source that proposed the
                // verified route scores a success; the others a failure.
                for (i, srcs) in sources.iter().enumerate() {
                    let won = paths[i] == path;
                    for &s in srcs {
                        self.reliability.record(s, won);
                    }
                }
                self.truths.insert(
                    self.graph,
                    TruthEntry {
                        from,
                        to,
                        departure,
                        path: path.clone(),
                        confidence: 1.0,
                    },
                );
                Ok(Recommendation {
                    path,
                    resolution: Resolution::Crowd,
                    questions_asked: questions_total,
                    workers_asked,
                    confidence,
                })
            }
            None => {
                let path = fallback(self, true);
                self.stats.total_questions += questions_total;
                self.stats.total_workers += workers_asked;
                self.truths.insert(
                    self.graph,
                    TruthEntry {
                        from,
                        to,
                        departure,
                        path: path.clone(),
                        confidence: self.cfg.eta_confidence * 0.5,
                    },
                );
                Ok(Recommendation {
                    path,
                    resolution: Resolution::Fallback,
                    questions_asked: questions_total,
                    workers_asked,
                    confidence: self.cfg.eta_confidence * 0.5,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_crowd::{AnswerModel, PopulationParams, WorkerPopulation};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};
    use cp_traj::{
        calibrate_path, generate_checkins, generate_trips, infer_significance, CheckInGenParams,
        DriverPreference, SignificanceParams, TripGenParams,
    };

    struct World {
        city: cp_roadnet::City,
        landmarks: cp_roadnet::LandmarkSet,
        significance: Vec<f64>,
        trips: cp_traj::TripDataset,
    }

    fn world(seed: u64) -> World {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let landmarks = generate_landmarks(&city.graph, &LandmarkGenParams::default(), seed);
        let trips = generate_trips(&city.graph, &TripGenParams::default(), seed).unwrap();
        let checkins =
            generate_checkins(&city.graph, &landmarks, &CheckInGenParams::default(), seed);
        let significance = infer_significance(
            &city.graph,
            &landmarks,
            &checkins,
            &trips,
            &CalibrationParams::default(),
            &SignificanceParams::default(),
        );
        World {
            city,
            landmarks,
            significance,
            trips,
        }
    }

    fn planner<'a>(w: &'a World, seed: u64) -> CrowdPlanner<'a> {
        let pop = WorkerPopulation::generate(&w.city.graph, &PopulationParams::default(), seed);
        let mut platform = Platform::new(pop, AnswerModel::default(), seed);
        platform.warm_up(&w.landmarks, 10);
        CrowdPlanner::new(
            &w.city.graph,
            &w.landmarks,
            w.significance.clone(),
            &w.trips.trips,
            platform,
            Config::default(),
        )
        .unwrap()
    }

    /// Oracle derived from the consensus route.
    fn oracle_for(w: &World, from: NodeId, to: NodeId) -> impl Fn(LandmarkId) -> bool + '_ {
        let consensus = DriverPreference::consensus()
            .preferred_route(&w.city.graph, from, to)
            .unwrap();
        let on_route: std::collections::HashSet<LandmarkId> = calibrate_path(
            &w.city.graph,
            &w.landmarks,
            &consensus,
            &CalibrationParams::default(),
        )
        .into_iter()
        .collect();
        move |l| on_route.contains(&l)
    }

    #[test]
    fn request_resolves_end_to_end() {
        let w = world(83);
        let mut cp = planner(&w, 83);
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let rec = cp
            .handle_request(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert_eq!(rec.path.source(), NodeId(0));
        assert_eq!(rec.path.destination(), NodeId(59));
        assert_eq!(cp.stats().requests, 1);
        assert_eq!(cp.truths().len(), 1, "resolution must record a truth");
    }

    #[test]
    fn second_identical_request_reuses_truth() {
        let w = world(89);
        let mut cp = planner(&w, 89);
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let t = TimeOfDay::from_hours(9.0);
        let first = cp
            .handle_request(NodeId(0), NodeId(59), t, &oracle)
            .unwrap();
        let second = cp
            .handle_request(NodeId(0), NodeId(59), t, &oracle)
            .unwrap();
        assert_eq!(second.resolution, Resolution::ReusedTruth);
        assert_eq!(second.path, first.path);
        assert_eq!(cp.stats().reuse_hits, 1);
        assert_eq!(second.questions_asked, 0);
    }

    #[test]
    fn crowd_path_exercised_on_contested_requests() {
        // Across a spread of requests at least one should reach the crowd
        // (or agreement) — and stats must be internally consistent.
        let w = world(97);
        let mut cp = planner(&w, 97);
        let pairs = [(0u32, 59u32), (9, 50), (5, 54), (20, 39), (3, 48)];
        for (a, b) in pairs {
            let oracle = oracle_for(&w, NodeId(a), NodeId(b));
            cp.handle_request(NodeId(a), NodeId(b), TimeOfDay::from_hours(8.0), &oracle)
                .unwrap();
        }
        let s = cp.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(
            s.reuse_hits + s.agreements + s.confident + s.crowd_tasks + s.fallbacks,
            5
        );
        assert!(
            s.crowd_tasks + s.agreements + s.confident > 0,
            "no request was resolved at all?"
        );
    }

    #[test]
    fn crowd_resolution_rewards_workers() {
        let w = world(101);
        // Force the crowd by making machine evaluation impossible to pass.
        let mut cfg = Config::default();
        cfg.agreement_similarity = 1.0; // only exact path equality agrees
        cfg.agreement_quorum = 1.0; // all sources must agree
        cfg.eta_confidence = 1.0; // machine confidence can never clear it
        let pop = WorkerPopulation::generate(&w.city.graph, &PopulationParams::default(), 101);
        let mut platform = Platform::new(pop, AnswerModel::default(), 101);
        platform.warm_up(&w.landmarks, 10);
        let mut cp = CrowdPlanner::new(
            &w.city.graph,
            &w.landmarks,
            w.significance.clone(),
            &w.trips.trips,
            platform,
            cfg,
        )
        .unwrap();
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let rec = cp
            .handle_request(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert!(matches!(
            rec.resolution,
            Resolution::Crowd | Resolution::Fallback
        ));
        if rec.resolution == Resolution::Crowd {
            assert!(rec.workers_asked > 0);
            assert!(rec.questions_asked > 0);
            // Some worker earned points.
            let earned: f64 = cp
                .platform()
                .population()
                .ids()
                .map(|w| cp.platform().points(w))
                .sum();
            assert!(earned > 0.0);
        }
    }

    /// Send/Sync audit: the serving layer moves planners onto worker
    /// threads and shares the read-only inputs across them. A regression
    /// here (e.g. an `Rc` or raw pointer sneaking into platform state)
    /// must fail to compile.
    #[test]
    fn planner_state_is_thread_mobile() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<CrowdPlanner<'static>>();
        assert_send::<TruthStore>();
        assert_sync::<TruthStore>();
        assert_sync::<Config>();
        assert_send::<Platform>();
        assert_send::<Recommendation>();
        assert_sync::<SystemStats>();
    }

    #[test]
    fn bad_significance_length_rejected() {
        let w = world(103);
        let pop = WorkerPopulation::generate(&w.city.graph, &PopulationParams::default(), 103);
        let platform = Platform::new(pop, AnswerModel::default(), 103);
        assert!(matches!(
            CrowdPlanner::new(
                &w.city.graph,
                &w.landmarks,
                vec![0.5; 3],
                &w.trips.trips,
                platform,
                Config::default(),
            ),
            Err(CoreError::SignificanceLengthMismatch { .. })
        ));
    }
}
