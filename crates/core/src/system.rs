//! The CrowdPlanner system orchestrator (paper §II-B, "control logic
//! component").
//!
//! Request lifecycle, exactly as in Fig. 1 of the paper:
//!
//! 1. **reuse truth** — if a verified truth covers the request, return it;
//! 2. **generate routes** — collect candidates from the five sources;
//! 3. **evaluate routes** — agreement / truth-derived confidence; if the
//!    machine can decide, record a truth and return;
//! 4. **crowd** — generate a task (landmark selection + ID3 ordering),
//!    select the top-k eligible workers, collect answers with early stop,
//!    reward workers, record the verified truth, and return.
//!
//! The planner is **owned and `'static`**: it holds `Arc` handles to its
//! world (road graph, landmarks, significance, trips, pre-built transfer
//! network) and reaches the crowd through an `Arc<dyn CrowdDesk>` — the
//! reserve → ask → commit protocol of [`cp_crowd::desk`] — instead of a
//! privately owned `&mut Platform`. That makes a planner `Send`, movable
//! onto resident worker pools, and lets N planners share one crowd
//! without oversubscribing any worker: an assignment only proceeds when
//! [`Reservation::acquire`] wins a slot under the desk's hard
//! `max_outstanding` cap; refused reservations are counted in
//! [`SystemStats::quota_rejections`], and a task whose every reservation
//! is refused falls back to the machine's best guess (counted in
//! [`SystemStats::starved_tasks`]).
//!
//! The crowd's collective knowledge enters through an *oracle* closure
//! supplied per request: `oracle(l)` is the true answer to "does the best
//! route pass landmark l?". In the full simulation the oracle is derived
//! from the consensus driver preference — the system itself never sees it
//! except through noisy worker answers.

use crate::config::Config;
use crate::early_stop::{EarlyStop, StopDecision};
use crate::error::CoreError;
use crate::evaluation::{evaluate_candidates, Evaluation};
use crate::reliability::SourceReliability;
use crate::reward::{reward_for, Participation};
use crate::route::LandmarkRoute;
use crate::taskgen::{generate_task, SelectionAlgorithm, Task};
use crate::truth::{TruthEntry, TruthStore};
use crate::worker_selection::{select_workers_scored, KnowledgeModel};
use cp_crowd::{CrowdDesk, Reservation};
use cp_mining::{
    distinct_candidates, generate_candidates, LdrParams, MfpParams, MprParams, SourceKind,
    TransferNetwork,
};
use cp_roadnet::{LandmarkId, LandmarkSet, NodeId, Path, RoadGraph};
use cp_traj::{CalibrationParams, TimeOfDay, Trip};
use std::sync::Arc;

/// How a request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Served from the truth store.
    ReusedTruth,
    /// Sources agreed; no crowd needed.
    Agreement,
    /// Truth-derived confidence cleared η; no crowd needed.
    Confident,
    /// Crowd-verified.
    Crowd,
    /// Crowd was needed but could not verify (no eligible workers /
    /// no usable votes / every reservation refused); fell back to the
    /// best machine guess.
    Fallback,
}

/// A resolved recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended route.
    pub path: Path,
    /// How it was resolved.
    pub resolution: Resolution,
    /// Total questions answered by all workers for this request.
    pub questions_asked: usize,
    /// Workers who participated.
    pub workers_asked: usize,
    /// Confidence of the answer (1.0 for reuse hits and agreements).
    pub confidence: f64,
}

/// Running system statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Requests served.
    pub requests: usize,
    /// Truth-store hits.
    pub reuse_hits: usize,
    /// Machine agreements.
    pub agreements: usize,
    /// Machine confidence wins.
    pub confident: usize,
    /// Crowd verifications.
    pub crowd_tasks: usize,
    /// Crowd tasks launched (including ones that ended in fallback).
    pub crowd_attempts: usize,
    /// Fallbacks.
    pub fallbacks: usize,
    /// Total questions asked across all crowd tasks.
    pub total_questions: usize,
    /// Total worker participations.
    pub total_workers: usize,
    /// Worker reservations refused at the desk's `max_outstanding` cap
    /// (contention with concurrent planners sharing the crowd).
    pub quota_rejections: usize,
    /// Crowd tasks where *every* selected worker's reservation was
    /// refused — the crowd was saturated and the machine's best guess
    /// stood in (a subset of `fallbacks`).
    pub starved_tasks: usize,
}

/// The CrowdPlanner server: owned, `Send` and `'static`.
///
/// Build one with [`CrowdPlanner::new`] (aggregates the transfer network
/// itself) or [`CrowdPlanner::with_mining_state`] (shares a pre-built
/// one, e.g. a serving world's). Planner-local state (truth store,
/// knowledge-model cache, source reliability, statistics) stays private;
/// the crowd is shared through the desk.
pub struct CrowdPlanner {
    graph: Arc<RoadGraph>,
    landmarks: Arc<LandmarkSet>,
    significance: Arc<Vec<f64>>,
    trips: Arc<Vec<Trip>>,
    transfer: Arc<TransferNetwork>,
    mpr: MprParams,
    mfp: MfpParams,
    ldr: LdrParams,
    desk: Arc<dyn CrowdDesk>,
    truths: TruthStore,
    /// Upper bound on the private truth store (0 = unbounded); a full
    /// store batch-evicts oldest-first. Resident serving pools set this
    /// so long-lived per-worker planners cannot grow without bound.
    truth_cap: usize,
    /// Cached knowledge model, keyed by the desk's answer-history
    /// generation: any new answer (this planner's or a concurrent
    /// sibling's) invalidates it.
    knowledge: Option<(u64, KnowledgeModel)>,
    cfg: Config,
    calibration: CalibrationParams,
    /// Landmark-selection algorithm used for task generation.
    pub selection_algorithm: SelectionAlgorithm,
    reliability: SourceReliability,
    stats: SystemStats,
}

impl CrowdPlanner {
    /// Builds the server, aggregating the all-day transfer network from
    /// the trips (the expensive part of candidate mining).
    ///
    /// `significance` must have one entry per landmark (the HITS-inferred
    /// `l.s` scores).
    pub fn new(
        graph: Arc<RoadGraph>,
        landmarks: Arc<LandmarkSet>,
        significance: Arc<Vec<f64>>,
        trips: Arc<Vec<Trip>>,
        desk: Arc<dyn CrowdDesk>,
        cfg: Config,
    ) -> Result<Self, CoreError> {
        let transfer = Arc::new(TransferNetwork::build(&graph, &trips, None));
        Self::with_mining_state(
            graph,
            landmarks,
            significance,
            trips,
            transfer,
            MprParams::default(),
            MfpParams::default(),
            LdrParams::default(),
            desk,
            cfg,
        )
    }

    /// Builds the server over an already-aggregated transfer network and
    /// explicit miner parameters — the constructor for serving stacks
    /// that keep one shared mining state per city world.
    #[allow(clippy::too_many_arguments)]
    pub fn with_mining_state(
        graph: Arc<RoadGraph>,
        landmarks: Arc<LandmarkSet>,
        significance: Arc<Vec<f64>>,
        trips: Arc<Vec<Trip>>,
        transfer: Arc<TransferNetwork>,
        mpr: MprParams,
        mfp: MfpParams,
        ldr: LdrParams,
        desk: Arc<dyn CrowdDesk>,
        cfg: Config,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        if significance.len() != landmarks.len() {
            return Err(CoreError::SignificanceLengthMismatch {
                expected: landmarks.len(),
                actual: significance.len(),
            });
        }
        Ok(CrowdPlanner {
            graph,
            landmarks,
            significance,
            trips,
            transfer,
            mpr,
            mfp,
            ldr,
            desk,
            truths: TruthStore::new(),
            truth_cap: 0,
            knowledge: None,
            cfg,
            calibration: CalibrationParams::default(),
            selection_algorithm: SelectionAlgorithm::Greedy,
            reliability: SourceReliability::default(),
            stats: SystemStats::default(),
        })
    }

    /// System statistics so far.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The truth store (read access for experiments).
    pub fn truths(&self) -> &TruthStore {
        &self.truths
    }

    /// Bounds the private truth store to at most `cap` entries (0 =
    /// unbounded, the default): a full store batch-evicts oldest-first
    /// on insert. Long-lived planners on resident worker pools should
    /// set this, mirroring the serving layer's bounded sharded store.
    pub fn set_truth_cap(&mut self, cap: usize) {
        self.truth_cap = cap;
    }

    /// Records a truth, enforcing the cap. Batch eviction (an eighth of
    /// the cap at a time) amortises the store's O(remaining) re-index.
    fn record_truth(&mut self, entry: TruthEntry) {
        self.truths.insert(&self.graph, entry);
        if self.truth_cap != 0 && self.truths.len() > self.truth_cap {
            let batch = (self.truth_cap / 8).max(1) + (self.truths.len() - self.truth_cap - 1);
            self.truths.evict_oldest(batch);
        }
    }

    /// The crowd desk this planner assigns through (shared with every
    /// sibling planner over the same crowd).
    pub fn desk(&self) -> &Arc<dyn CrowdDesk> {
        &self.desk
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The road graph.
    pub fn graph(&self) -> &Arc<RoadGraph> {
        &self.graph
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &Arc<LandmarkSet> {
        &self.landmarks
    }

    /// Inferred significance of a landmark.
    pub fn significance_of(&self, l: LandmarkId) -> f64 {
        self.significance[l.index()]
    }

    /// Learned per-source reliability (paper future work: "quality control
    /// of popular route mining algorithms").
    pub fn source_reliability(&self) -> &SourceReliability {
        &self.reliability
    }

    /// Produces one candidate route per available source over the owned
    /// mining state (identical output to the borrowed
    /// `CandidateGenerator` over the same inputs).
    pub fn candidates(
        &self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Vec<cp_mining::CandidateRoute> {
        generate_candidates(
            &self.graph,
            &self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            from,
            to,
            departure,
        )
    }

    /// Lazily (re)builds the worker-knowledge model. Invalidated whenever
    /// the desk's answer history moves (this planner's asks or a
    /// concurrent sibling's).
    pub fn knowledge_model(&mut self) -> &KnowledgeModel {
        let generation = self.desk.generation();
        let stale = self
            .knowledge
            .as_ref()
            .is_none_or(|(g, _)| *g != generation);
        if stale {
            self.knowledge = Some((
                generation,
                KnowledgeModel::build(&*self.desk, &self.landmarks, &self.cfg),
            ));
        }
        &self.knowledge.as_ref().expect("just built").1
    }

    /// Step 1 of the ladder: a private-truth-store hit, if any.
    fn reuse_hit(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Option<Recommendation> {
        let hit = self
            .truths
            .lookup(&self.graph, from, to, departure, &self.cfg)?;
        self.stats.reuse_hits += 1;
        Some(Recommendation {
            path: hit.path.clone(),
            resolution: Resolution::ReusedTruth,
            questions_asked: 0,
            workers_asked: 0,
            confidence: hit.confidence,
        })
    }

    /// Handles one route request. `oracle(l)` must answer "does the best
    /// route pass landmark l?" — the latent crowd knowledge the workers
    /// noisily report.
    pub fn handle_request(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        self.stats.requests += 1;

        // Step 1: reuse truth.
        if let Some(hit) = self.reuse_hit(from, to, departure) {
            return Ok(hit);
        }

        // Step 2: generate candidates.
        let candidates = self.candidates(from, to, departure);
        self.machine_then_crowd(from, to, departure, &candidates, oracle)
    }

    /// Like [`CrowdPlanner::handle_request`] but with the candidate set
    /// pre-mined by the caller — the serving layer's per-`(OD,bucket)`
    /// candidate cache feeds this so a crowd-backed city never mines the
    /// same request twice. `Some(candidates)` must be what
    /// [`CrowdPlanner::candidates`] would produce for the same request
    /// (the serving world shares this planner's mining state, so its
    /// cached sets qualify — including legitimately *empty* sets, which
    /// resolve to [`CoreError::NoCandidates`] without re-mining); `None`
    /// makes the planner mine for itself.
    pub fn handle_request_with_candidates(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: Option<&[cp_mining::CandidateRoute]>,
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        self.stats.requests += 1;
        if let Some(hit) = self.reuse_hit(from, to, departure) {
            return Ok(hit);
        }
        match candidates {
            Some(provided) => self.machine_then_crowd(from, to, departure, provided, oracle),
            None => {
                let mined = self.candidates(from, to, departure);
                self.machine_then_crowd(from, to, departure, &mined, oracle)
            }
        }
    }

    /// Steps 3–4 of the ladder: machine evaluation, then the crowd.
    fn machine_then_crowd(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[cp_mining::CandidateRoute],
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        if candidates.is_empty() {
            return Err(CoreError::NoCandidates);
        }

        // Step 3: machine evaluation.
        let confidences =
            match evaluate_candidates(&self.graph, candidates, &self.truths, from, to, &self.cfg) {
                Evaluation::Agreement { path, supporters } => {
                    self.stats.agreements += 1;
                    self.record_truth(TruthEntry {
                        from,
                        to,
                        departure,
                        path: path.clone(),
                        confidence: 1.0,
                    });
                    return Ok(Recommendation {
                        path,
                        resolution: Resolution::Agreement,
                        questions_asked: 0,
                        workers_asked: 0,
                        confidence: supporters as f64 / candidates.len() as f64,
                    });
                }
                Evaluation::Confident { path, confidence } => {
                    self.stats.confident += 1;
                    self.record_truth(TruthEntry {
                        from,
                        to,
                        departure,
                        path: path.clone(),
                        confidence,
                    });
                    return Ok(Recommendation {
                        path,
                        resolution: Resolution::Confident,
                        questions_asked: 0,
                        workers_asked: 0,
                        confidence,
                    });
                }
                Evaluation::Undecided { confidences } => confidences,
            };

        // Step 4: crowd.
        self.crowd_resolve(from, to, departure, candidates, confidences, oracle)
    }

    /// The CR module: task generation, worker selection, reserve → ask →
    /// commit answer collection with early stop, rewarding, truth
    /// recording.
    #[allow(clippy::too_many_arguments)]
    fn crowd_resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[cp_mining::CandidateRoute],
        confidences: Vec<f64>,
        oracle: &dyn Fn(LandmarkId) -> bool,
    ) -> Result<Recommendation, CoreError> {
        // Deduplicate identical paths, merging their sources; carry the
        // best machine confidence per distinct path as the ID3 prior.
        let distinct = distinct_candidates(candidates);
        let mut paths: Vec<Path> = Vec::new();
        let mut sources: Vec<Vec<SourceKind>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for (path, srcs) in distinct {
            let conf = candidates
                .iter()
                .zip(confidences.iter())
                .filter(|(c, _)| c.path == path)
                .map(|(_, &w)| w)
                .fold(0.0f64, f64::max);
            paths.push(path);
            sources.push(srcs);
            weights.push(0.1 + conf); // smoothed prior
        }

        // Calibrate to landmark routes; merge candidates whose landmark
        // sets coincide (they are indistinguishable to workers).
        let mut routes: Vec<LandmarkRoute> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let lr = LandmarkRoute::from_path(&self.graph, &self.landmarks, p, &self.calibration);
            if routes.iter().all(|r| !r.same_landmark_set(&lr)) {
                routes.push(lr);
                kept.push(i);
            }
        }

        // Learned source reliability breaks confidence ties: the system's
        // Beta posterior starts from the paper's finding (MFP strongest)
        // and adapts to every crowd verdict it observes.
        let reliability: Vec<f64> = sources
            .iter()
            .map(|srcs| self.reliability.best_of(srcs))
            .collect();
        let fallback = |this: &mut Self, stats_fallback: bool| {
            // Highest machine confidence; ties broken by learned
            // reliability.
            let best = (0..paths.len())
                .max_by(|&a, &b| {
                    weights[a]
                        .partial_cmp(&weights[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            reliability[a]
                                .partial_cmp(&reliability[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .unwrap_or(0);
            if stats_fallback {
                this.stats.fallbacks += 1;
            }
            paths[best].clone()
        };
        let fallback_recommendation =
            |this: &mut Self, questions_asked: usize, workers_asked: usize| {
                let path = fallback(this, true);
                let confidence = this.cfg.eta_confidence * 0.5;
                this.record_truth(TruthEntry {
                    from,
                    to,
                    departure,
                    path: path.clone(),
                    confidence,
                });
                Recommendation {
                    path,
                    resolution: Resolution::Fallback,
                    questions_asked,
                    workers_asked,
                    confidence,
                }
            };

        if routes.len() < 2 {
            // Everything calibrates to one landmark route: the crowd cannot
            // distinguish candidates; return the best machine guess.
            return Ok(fallback_recommendation(self, 0, 0));
        }

        let kept_weights: Vec<f64> = kept.iter().map(|&i| weights[i]).collect();
        let task: Task = generate_task(
            routes,
            &self.significance,
            self.selection_algorithm,
            self.cfg.selection_budget,
            Some(&kept_weights),
        )?;
        let question_landmarks: Vec<LandmarkId> = task.questions.iter().map(|&(l, _)| l).collect();

        // Worker selection. The quota filter sees the tighter of the
        // paper's η_#q and the desk's hard cap, so selection never
        // nominates workers whose reservations are guaranteed to bounce.
        self.knowledge_model();
        let knowledge = &self.knowledge.as_ref().expect("built above").1;
        let mut sel_cfg = self.cfg.clone();
        sel_cfg.eta_quota = sel_cfg.eta_quota.min(self.desk.max_outstanding());
        let workers =
            match select_workers_scored(&*self.desk, knowledge, &question_landmarks, &sel_cfg) {
                Ok(w) => w,
                Err(CoreError::NoEligibleWorkers) => {
                    // Distinguish transient quota saturation from a
                    // genuinely unknowledgeable / unresponsive crowd: if
                    // lifting the quota filter alone finds workers, this
                    // is starvation — book it and (unlike a real
                    // fallback verdict) record no truth, so a retry once
                    // capacity frees up reaches the crowd.
                    sel_cfg.eta_quota = u32::MAX;
                    let quota_bound = select_workers_scored(
                        &*self.desk,
                        knowledge,
                        &question_landmarks,
                        &sel_cfg,
                    )
                    .is_ok();
                    if quota_bound {
                        self.stats.starved_tasks += 1;
                        let path = fallback(self, true);
                        return Ok(Recommendation {
                            path,
                            resolution: Resolution::Fallback,
                            questions_asked: 0,
                            workers_asked: 0,
                            confidence: self.cfg.eta_confidence * 0.5,
                        });
                    }
                    return Ok(fallback_recommendation(self, 0, 0));
                }
                Err(e) => return Err(e),
            };

        // Answer collection with early stop. Each assignment follows the
        // desk's reserve → ask → commit protocol: a worker already at the
        // shared `max_outstanding` cap is skipped (counted as a quota
        // rejection), and every granted reservation is settled exactly
        // once — committed after rewarding below, or released by the
        // guard on any early exit.
        self.stats.crowd_attempts += 1;
        let mut aggregator = EarlyStop::new(task.routes.len());
        let mut participations: Vec<(cp_crowd::WorkerId, Participation)> = Vec::new();
        let mut reservations: Vec<Reservation> = Vec::new();
        let mut questions_total = 0usize;
        // Normalise preference scores into vote weights with mean ~1.
        let score_sum: f64 = workers.iter().map(|&(_, s)| s).sum();
        let weight_of = |s: f64| {
            if score_sum > 0.0 {
                (s * workers.len() as f64 / score_sum).max(0.1)
            } else {
                1.0
            }
        };
        for &(w, score) in &workers {
            let reservation = match Reservation::acquire(&self.desk, w) {
                Ok(r) => r,
                Err(_quota) => {
                    self.stats.quota_rejections += 1;
                    continue;
                }
            };
            let mut elapsed = 0.0f64;
            let deadline = self.cfg.task_deadline;
            let desk = &self.desk;
            let landmarks = &self.landmarks;
            let (vote, asked) = task.tree.walk_answers(|l| {
                let lm = landmarks.get(l);
                let truth = oracle(l);
                let (answer, rt) = desk.ask(w, lm, truth);
                elapsed += rt;
                answer
            });
            let on_time = elapsed <= deadline;
            questions_total += asked.len();
            let vote = if on_time { vote } else { None };
            participations.push((
                w,
                Participation {
                    questions_answered: asked.len(),
                    voted_for: vote,
                },
            ));
            reservations.push(reservation);
            aggregator.record_weighted(vote, weight_of(score));
            if let StopDecision::Stop { .. } = aggregator.decision(&self.cfg) {
                break;
            }
        }

        if participations.is_empty() {
            // Every selected worker's reservation was refused: the crowd
            // is saturated by concurrent planners. The machine's best
            // guess stands, but — unlike a genuine "crowd could not
            // verify" outcome — this is transient contention, so **no
            // truth is recorded**: a retry once capacity frees up must
            // reach the crowd, not a memoized degraded guess.
            self.stats.starved_tasks += 1;
            let path = fallback(self, true);
            return Ok(Recommendation {
                path,
                resolution: Resolution::Fallback,
                questions_asked: 0,
                workers_asked: 0,
                confidence: self.cfg.eta_confidence * 0.5,
            });
        }

        // Verdict: an early stop is decisive by construction; otherwise the
        // final leader must clear the verdict floor, else the crowd could
        // not verify and the machine's best guess stands.
        let verdict = match aggregator.decision(&self.cfg) {
            StopDecision::Stop { winner, confidence } => Some((winner, confidence)),
            StopDecision::Continue => aggregator
                .final_verdict()
                .filter(|&(_, c)| c >= self.cfg.verdict_floor),
        };

        // Rewards + bookkeeping: every reservation is committed here,
        // exactly once.
        let winner_idx = verdict.map(|(w, _)| w);
        for ((w, p), reservation) in participations.iter().zip(reservations) {
            let pts = reward_for(p, winner_idx, &self.cfg);
            self.desk.award(*w, pts);
            reservation.commit();
        }

        let workers_asked = participations.len();
        match verdict {
            Some((winner, confidence)) => {
                self.stats.crowd_tasks += 1;
                self.stats.total_questions += questions_total;
                self.stats.total_workers += workers_asked;
                let path = paths[kept[winner]].clone();
                // Source-quality control: every source that proposed the
                // verified route scores a success; the others a failure.
                for (i, srcs) in sources.iter().enumerate() {
                    let won = paths[i] == path;
                    for &s in srcs {
                        self.reliability.record(s, won);
                    }
                }
                self.record_truth(TruthEntry {
                    from,
                    to,
                    departure,
                    path: path.clone(),
                    confidence: 1.0,
                });
                Ok(Recommendation {
                    path,
                    resolution: Resolution::Crowd,
                    questions_asked: questions_total,
                    workers_asked,
                    confidence,
                })
            }
            None => {
                self.stats.total_questions += questions_total;
                self.stats.total_workers += workers_asked;
                Ok(fallback_recommendation(
                    self,
                    questions_total,
                    workers_asked,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_crowd::{
        AnswerModel, CrowdObserve, Platform, PopulationParams, SharedCrowd, WorkerPopulation,
    };
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};
    use cp_traj::{
        calibrate_path, generate_checkins, generate_trips, infer_significance, CheckInGenParams,
        DriverPreference, SignificanceParams, TripGenParams,
    };

    struct World {
        city: cp_roadnet::City,
        landmarks: cp_roadnet::LandmarkSet,
        significance: Vec<f64>,
        trips: cp_traj::TripDataset,
    }

    fn world(seed: u64) -> World {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let landmarks = generate_landmarks(&city.graph, &LandmarkGenParams::default(), seed);
        let trips = generate_trips(&city.graph, &TripGenParams::default(), seed).unwrap();
        let checkins =
            generate_checkins(&city.graph, &landmarks, &CheckInGenParams::default(), seed);
        let significance = infer_significance(
            &city.graph,
            &landmarks,
            &checkins,
            &trips,
            &CalibrationParams::default(),
            &SignificanceParams::default(),
        );
        World {
            city,
            landmarks,
            significance,
            trips,
        }
    }

    fn warmed_platform(w: &World, seed: u64) -> Platform {
        let pop = WorkerPopulation::generate(&w.city.graph, &PopulationParams::default(), seed);
        let mut platform = Platform::new(pop, AnswerModel::default(), seed);
        platform.warm_up(&w.landmarks, 10);
        platform
    }

    fn planner_with_desk(w: &World, desk: Arc<dyn CrowdDesk>, cfg: Config) -> CrowdPlanner {
        CrowdPlanner::new(
            Arc::new(w.city.graph.clone()),
            Arc::new(w.landmarks.clone()),
            Arc::new(w.significance.clone()),
            Arc::new(w.trips.trips.clone()),
            desk,
            cfg,
        )
        .unwrap()
    }

    fn planner(w: &World, seed: u64) -> CrowdPlanner {
        let cfg = Config::default();
        let desk = Arc::new(SharedCrowd::new(warmed_platform(w, seed), cfg.eta_quota));
        planner_with_desk(w, desk, cfg)
    }

    /// Oracle derived from the consensus route.
    fn oracle_for(w: &World, from: NodeId, to: NodeId) -> impl Fn(LandmarkId) -> bool + '_ {
        let consensus = DriverPreference::consensus()
            .preferred_route(&w.city.graph, from, to)
            .unwrap();
        let on_route: std::collections::HashSet<LandmarkId> = calibrate_path(
            &w.city.graph,
            &w.landmarks,
            &consensus,
            &CalibrationParams::default(),
        )
        .into_iter()
        .collect();
        move |l| on_route.contains(&l)
    }

    #[test]
    fn request_resolves_end_to_end() {
        let w = world(83);
        let mut cp = planner(&w, 83);
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let rec = cp
            .handle_request(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert_eq!(rec.path.source(), NodeId(0));
        assert_eq!(rec.path.destination(), NodeId(59));
        assert_eq!(cp.stats().requests, 1);
        assert_eq!(cp.truths().len(), 1, "resolution must record a truth");
    }

    #[test]
    fn second_identical_request_reuses_truth() {
        let w = world(89);
        let mut cp = planner(&w, 89);
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let t = TimeOfDay::from_hours(9.0);
        let first = cp
            .handle_request(NodeId(0), NodeId(59), t, &oracle)
            .unwrap();
        let second = cp
            .handle_request(NodeId(0), NodeId(59), t, &oracle)
            .unwrap();
        assert_eq!(second.resolution, Resolution::ReusedTruth);
        assert_eq!(second.path, first.path);
        assert_eq!(cp.stats().reuse_hits, 1);
        assert_eq!(second.questions_asked, 0);
    }

    #[test]
    fn owned_candidates_match_borrowed_generator() {
        let w = world(83);
        let cp = planner(&w, 83);
        let generator = cp_mining::CandidateGenerator::new(&w.city.graph, &w.trips.trips);
        let dep = TimeOfDay::from_hours(8.0);
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let borrowed = generator.candidates(NodeId(a), NodeId(b), dep);
            let owned = cp.candidates(NodeId(a), NodeId(b), dep);
            assert_eq!(borrowed.len(), owned.len());
            for (x, y) in borrowed.iter().zip(&owned) {
                assert_eq!(x.source, y.source);
                assert_eq!(x.path, y.path);
            }
        }
    }

    #[test]
    fn crowd_path_exercised_on_contested_requests() {
        // Across a spread of requests at least one should reach the crowd
        // (or agreement) — and stats must be internally consistent.
        let w = world(97);
        let mut cp = planner(&w, 97);
        let pairs = [(0u32, 59u32), (9, 50), (5, 54), (20, 39), (3, 48)];
        for (a, b) in pairs {
            let oracle = oracle_for(&w, NodeId(a), NodeId(b));
            cp.handle_request(NodeId(a), NodeId(b), TimeOfDay::from_hours(8.0), &oracle)
                .unwrap();
        }
        let s = cp.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(
            s.reuse_hits + s.agreements + s.confident + s.crowd_tasks + s.fallbacks,
            5
        );
        assert!(
            s.crowd_tasks + s.agreements + s.confident > 0,
            "no request was resolved at all?"
        );
    }

    #[test]
    fn crowd_resolution_rewards_workers_and_settles_reservations() {
        let w = world(101);
        // Force the crowd by making machine evaluation impossible to pass.
        let mut cfg = Config::default();
        cfg.agreement_similarity = 1.0; // only exact path equality agrees
        cfg.agreement_quorum = 1.0; // all sources must agree
        cfg.eta_confidence = 1.0; // machine confidence can never clear it
        let desk = Arc::new(SharedCrowd::new(warmed_platform(&w, 101), cfg.eta_quota));
        let mut cp = planner_with_desk(&w, Arc::clone(&desk) as Arc<dyn CrowdDesk>, cfg);
        let oracle = oracle_for(&w, NodeId(0), NodeId(59));
        let rec = cp
            .handle_request(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert!(matches!(
            rec.resolution,
            Resolution::Crowd | Resolution::Fallback
        ));
        if rec.resolution == Resolution::Crowd {
            assert!(rec.workers_asked > 0);
            assert!(rec.questions_asked > 0);
            // Some worker earned points.
            let earned: f64 = desk.population().ids().map(|w| desk.points(w)).sum();
            assert!(earned > 0.0);
        }
        // Every granted reservation was settled exactly once and no
        // quota is held after the task.
        assert!(desk.desk_stats().is_drained());
        for id in desk.population().ids() {
            assert_eq!(desk.outstanding(id), 0);
        }
    }

    #[test]
    fn saturated_desk_starves_to_fallback_with_typed_accounting() {
        let w = world(107);
        let mut cfg = Config::default();
        cfg.agreement_similarity = 1.0;
        cfg.agreement_quorum = 1.0;
        cfg.eta_confidence = 1.0;
        cfg.reuse_radius = 0.0;
        let desk = Arc::new(SharedCrowd::new(warmed_platform(&w, 107), 1));
        // Saturate every worker: each already holds max_outstanding tasks,
        // so every reservation this planner attempts must bounce.
        let ids: Vec<cp_crowd::WorkerId> = desk.population().ids().collect();
        for &id in &ids {
            desk.try_reserve(id).unwrap();
        }
        let mut cp = planner_with_desk(&w, Arc::clone(&desk) as Arc<dyn CrowdDesk>, cfg);
        let pairs = [(0u32, 59u32), (9, 50), (5, 54), (20, 39), (3, 48)];
        for (a, b) in pairs {
            let oracle = oracle_for(&w, NodeId(a), NodeId(b));
            let rec = cp
                .handle_request(NodeId(a), NodeId(b), TimeOfDay::from_hours(8.0), &oracle)
                .unwrap();
            // Reservations can never be granted, so nothing resolves by
            // crowd and nobody is ever asked.
            assert_ne!(rec.resolution, Resolution::Crowd);
            assert_eq!(rec.workers_asked, 0);
        }
        let s = cp.stats();
        assert!(
            s.starved_tasks > 0,
            "a fully saturated desk must starve at least one task: {s:?}"
        );
        // Selection is clamped to the desk cap, so saturated workers are
        // never even nominated: no reservation is attempted (and none
        // bounce), the task is recognised as quota-bound up front.
        assert_eq!(s.quota_rejections, 0);
        assert_eq!(s.crowd_attempts, 0, "no crowd task should launch");
        assert_eq!(s.crowd_tasks, 0);
        // Saturation never leaks extra outstanding slots.
        for &id in &ids {
            assert_eq!(desk.outstanding(id), 1);
        }
    }

    #[test]
    fn truth_cap_bounds_the_private_store() {
        let w = world(83);
        let mut cp = planner(&w, 83);
        cp.set_truth_cap(4);
        let pairs = [
            (0u32, 59u32),
            (1, 58),
            (2, 57),
            (3, 56),
            (4, 55),
            (5, 54),
            (6, 53),
            (7, 52),
        ];
        for (a, b) in pairs {
            let oracle = oracle_for(&w, NodeId(a), NodeId(b));
            cp.handle_request(NodeId(a), NodeId(b), TimeOfDay::from_hours(8.0), &oracle)
                .unwrap();
        }
        assert_eq!(cp.stats().requests, 8);
        assert!(
            cp.truths().len() <= 4,
            "cap must bound the private store: {}",
            cp.truths().len()
        );
    }

    /// Send/'static audit: the serving layer moves owned planners onto
    /// resident worker threads. A regression here (a lifetime or an
    /// un-Send handle sneaking back into the planner) must fail to
    /// compile.
    #[test]
    fn planner_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<CrowdPlanner>();
        assert_send::<TruthStore>();
        assert_sync::<TruthStore>();
        assert_sync::<Config>();
        assert_send::<Recommendation>();
        assert_sync::<SystemStats>();
    }

    #[test]
    fn bad_significance_length_rejected() {
        let w = world(103);
        let desk: Arc<dyn CrowdDesk> = Arc::new(SharedCrowd::new(warmed_platform(&w, 103), 5));
        assert!(matches!(
            CrowdPlanner::new(
                Arc::new(w.city.graph.clone()),
                Arc::new(w.landmarks.clone()),
                Arc::new(vec![0.5; 3]),
                Arc::new(w.trips.trips.clone()),
                desk,
                Config::default(),
            ),
            Err(CoreError::SignificanceLengthMismatch { .. })
        ));
    }
}
