//! Verified-truth store and reuse (paper §II-B1, "reuse truth" /
//! "verified truth" components).
//!
//! Every resolved request deposits its verified best route, keyed by the
//! OD pair and a departure-time tag. A new request *hits* the store when
//! its endpoints lie within the reuse radius of a stored truth's endpoints
//! and its departure time falls within the reuse window (circular,
//! time-of-day) — in which case the stored route is returned immediately,
//! saving both computation and crowd cost.
//!
//! ## Indexing
//!
//! Lookups are served by a uniform spatio-temporal grid ([`TruthGrid`]):
//! every entry is indexed under its *(origin cell, destination cell, time
//! bucket)* key, plus an origin-cell-only side index for the time-free
//! [`TruthStore::nearby`] query. A lookup therefore probes only the cell
//! neighbourhood covering the reuse radius/window instead of scanning
//! every stored truth — sub-linear in store size, which is what makes the
//! concurrent serving layer (`cp-service`) viable at scale. The previous
//! full-scan implementation is kept as [`TruthStore::lookup_linear`]; it
//! is the reference semantics that the grid path must reproduce exactly
//! (same hit, same closest-match tie-break by insertion order) and the
//! baseline the `service` benchmark compares against.

use crate::config::Config;
use crate::hashing::FxHashMap;
use cp_roadnet::{NodeId, Path, Point, RoadGraph};
use cp_traj::TimeOfDay;

/// One verified truth.
#[derive(Debug, Clone)]
pub struct TruthEntry {
    /// Request origin the truth was verified for.
    pub from: NodeId,
    /// Request destination.
    pub to: NodeId,
    /// Departure-time tag.
    pub departure: TimeOfDay,
    /// The verified best route.
    pub path: Path,
    /// Confidence at verification time (1.0 for crowd-verified truths).
    pub confidence: f64,
}

/// Uniform spatio-temporal grid over truth entries.
///
/// Maps *(origin cell, destination cell, time bucket)* to the ids of the
/// entries filed there, with an origin-cell side index for queries that
/// ignore time and destination. Cell and bucket geometry are fixed at
/// construction; queries with any radius/window work by probing the
/// covering cell neighbourhood.
#[derive(Debug, Clone)]
pub struct TruthGrid {
    /// Spatial cell edge, metres.
    cell_m: f64,
    /// Time bucket width, seconds.
    bucket_s: f64,
    /// Number of circular time buckets per day.
    buckets: u16,
    /// (origin cell, destination cell, time bucket) → entry ids.
    spatiotemporal: FxHashMap<(i32, i32, i32, i32, u16), Vec<u32>>,
    /// Origin cell → entry ids (for time/destination-free queries).
    origin: FxHashMap<(i32, i32), Vec<u32>>,
}

impl TruthGrid {
    /// Creates an empty grid with the given geometry.
    pub fn new(cell_m: f64, bucket_s: f64) -> Self {
        assert!(cell_m > 0.0, "grid cell must be positive");
        assert!(bucket_s > 0.0, "time bucket must be positive");
        let buckets = (TimeOfDay::DAY / bucket_s).ceil().max(1.0) as u16;
        TruthGrid {
            cell_m,
            bucket_s,
            buckets,
            spatiotemporal: FxHashMap::default(),
            origin: FxHashMap::default(),
        }
    }

    /// Spatial cell of a point (public so shard routers can use the
    /// same geometry).
    pub fn cell_of_point(&self, p: Point) -> (i32, i32) {
        self.cell_of(p)
    }

    /// Spatial cell of a point.
    fn cell_of(&self, p: Point) -> (i32, i32) {
        grid_cell(p, self.cell_m)
    }

    /// Circular time bucket of a time tag.
    fn bucket_of(&self, t: TimeOfDay) -> u16 {
        (((t.0 / self.bucket_s).floor() as u32) % self.buckets as u32) as u16
    }

    /// Empties the grid, keeping its geometry. Used when a store evicts
    /// entries and must re-index the survivors under fresh dense ids.
    pub fn clear(&mut self) {
        self.spatiotemporal.clear();
        self.origin.clear();
    }

    /// Indexes entry `id` under its key.
    pub fn insert(&mut self, from: Point, to: Point, departure: TimeOfDay, id: u32) {
        let (ox, oy) = self.cell_of(from);
        let (dx, dy) = self.cell_of(to);
        let b = self.bucket_of(departure);
        self.spatiotemporal
            .entry((ox, oy, dx, dy, b))
            .or_default()
            .push(id);
        self.origin.entry((ox, oy)).or_default().push(id);
    }

    /// The circular bucket range covering `window` seconds around
    /// `departure` (a whole-day window visits each bucket exactly once).
    fn bucket_range(&self, departure: TimeOfDay, window: f64) -> std::ops::RangeInclusive<i32> {
        let n = self.buckets as i32;
        // When the bucket width divides the day evenly every bucket spans
        // exactly `bucket_s`; otherwise the wrap-around bucket is
        // truncated and one extra bucket of slack is needed.
        let evenly = (TimeOfDay::DAY / self.bucket_s).fract() == 0.0;
        let bd = (window / self.bucket_s).ceil() as i32 + if evenly { 0 } else { 1 };
        let b = self.bucket_of(departure) as i32;
        if 2 * bd + 1 >= n {
            0..=(n - 1)
        } else {
            (b - bd)..=(b + bd)
        }
    }

    /// Probes all (dest cell, bucket) keys under one origin cell.
    fn probe_origin_cell(
        &self,
        ocell: (i32, i32),
        dcell: (i32, i32),
        r: i32,
        bucket_range: &std::ops::RangeInclusive<i32>,
        f: &mut impl FnMut(u32),
    ) {
        let n = self.buckets as i32;
        for cdx in (dcell.0 - r)..=(dcell.0 + r) {
            for cdy in (dcell.1 - r)..=(dcell.1 + r) {
                for raw_b in bucket_range.clone() {
                    let cb = raw_b.rem_euclid(n) as u16;
                    if let Some(ids) = self.spatiotemporal.get(&(ocell.0, ocell.1, cdx, cdy, cb)) {
                        for &id in ids {
                            f(id);
                        }
                    }
                }
            }
        }
    }

    /// Calls `f` for every entry id filed within `radius` metres (in cell
    /// terms) of both endpoints and within `window` seconds (in bucket
    /// terms) of `departure`. Ids are visited at most once; candidates
    /// still require an exact distance/time check by the caller.
    pub fn spatiotemporal_candidates(
        &self,
        from: Point,
        to: Point,
        radius: f64,
        departure: TimeOfDay,
        window: f64,
        mut f: impl FnMut(u32),
    ) {
        let (ox, oy) = self.cell_of(from);
        let dcell = self.cell_of(to);
        let r = (radius / self.cell_m).ceil() as i32;
        let bucket_range = self.bucket_range(departure, window);
        // The 4-D neighbourhood product explodes when the query radius is
        // much larger than the cell edge. Past a fixed probe budget the
        // origin-cell index is strictly cheaper — both paths feed the same
        // exact distance/time filter, so the choice is invisible to
        // callers.
        let side = 2 * r as i64 + 1;
        let probes = side * side * side * side * bucket_range.clone().count() as i64;
        if probes > 4096 {
            self.origin_candidates(from, radius, f);
            return;
        }
        for cox in (ox - r)..=(ox + r) {
            for coy in (oy - r)..=(oy + r) {
                self.probe_origin_cell((cox, coy), dcell, r, &bucket_range, &mut f);
            }
        }
    }

    /// Like [`TruthGrid::spatiotemporal_candidates`], but restricted to
    /// the given origin cells — shard routers use this so each shard
    /// probes only the cells it owns instead of the whole neighbourhood.
    pub fn spatiotemporal_candidates_in_cells(
        &self,
        origin_cells: &[(i32, i32)],
        to: Point,
        radius: f64,
        departure: TimeOfDay,
        window: f64,
        mut f: impl FnMut(u32),
    ) {
        let dcell = self.cell_of(to);
        let r = (radius / self.cell_m).ceil() as i32;
        let bucket_range = self.bucket_range(departure, window);
        let side = 2 * r as i64 + 1;
        let probes = origin_cells.len() as i64 * side * side * bucket_range.clone().count() as i64;
        if probes > 4096 {
            for &cell in origin_cells {
                if let Some(ids) = self.origin.get(&cell) {
                    for &id in ids {
                        f(id);
                    }
                }
            }
            return;
        }
        for &cell in origin_cells {
            self.probe_origin_cell(cell, dcell, r, &bucket_range, &mut f);
        }
    }

    /// Calls `f` for every entry id whose origin cell lies within `radius`
    /// metres (in cell terms) of `from`, regardless of destination or
    /// time.
    pub fn origin_candidates(&self, from: Point, radius: f64, mut f: impl FnMut(u32)) {
        let (ox, oy) = self.cell_of(from);
        let r = (radius / self.cell_m).ceil() as i32;
        for cox in (ox - r)..=(ox + r) {
            for coy in (oy - r)..=(oy + r) {
                if let Some(ids) = self.origin.get(&(cox, coy)) {
                    for &id in ids {
                        f(id);
                    }
                }
            }
        }
    }
}

/// The uniform grid-cell assignment shared by every layer that keys on
/// cells (the grid index, shard routing, candidate caching). All of
/// them must use this one function: if two layers computed cells
/// differently, an entry could be filed under one cell and probed under
/// another.
pub fn grid_cell(p: Point, cell_m: f64) -> (i32, i32) {
    ((p.x / cell_m).floor() as i32, (p.y / cell_m).floor() as i32)
}

/// Default spatial cell edge: the default reuse radius, so a reuse
/// lookup probes a 3×3 origin neighbourhood.
pub const DEFAULT_CELL_M: f64 = 300.0;
/// Default time bucket: the default reuse window (2 h → 12 buckets/day).
pub const DEFAULT_BUCKET_S: f64 = 2.0 * 3600.0;

/// A stored truth plus its cached endpoint positions (so queries never
/// have to go back to the graph for stored entries).
#[derive(Debug, Clone)]
struct Stored {
    from_pos: Point,
    to_pos: Point,
    entry: TruthEntry,
}

/// The truth database.
#[derive(Debug)]
pub struct TruthStore {
    stored: Vec<Stored>,
    grid: TruthGrid,
}

impl Default for TruthStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TruthStore {
    /// Creates an empty store with default grid geometry.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_CELL_M, DEFAULT_BUCKET_S)
    }

    /// Creates an empty store with explicit grid geometry (spatial cell
    /// edge in metres, time bucket in seconds).
    pub fn with_geometry(cell_m: f64, bucket_s: f64) -> Self {
        TruthStore {
            stored: Vec::new(),
            grid: TruthGrid::new(cell_m, bucket_s),
        }
    }

    /// Number of stored truths.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Inserts a verified truth, indexing it by the endpoint positions
    /// taken from `graph`.
    pub fn insert(&mut self, graph: &RoadGraph, entry: TruthEntry) {
        self.insert_at(graph.position(entry.from), graph.position(entry.to), entry);
    }

    /// Inserts a verified truth with pre-resolved endpoint positions
    /// (lets callers that already know the positions skip the graph).
    pub fn insert_at(&mut self, from_pos: Point, to_pos: Point, entry: TruthEntry) {
        let id = self.stored.len() as u32;
        self.grid.insert(from_pos, to_pos, entry.departure, id);
        self.stored.push(Stored {
            from_pos,
            to_pos,
            entry,
        });
    }

    /// Evicts the `k` oldest entries (insertion order is age order) and
    /// re-indexes the survivors under fresh dense ids. Returns how many
    /// entries were actually removed. O(remaining) — callers amortise by
    /// evicting in batches rather than one at a time.
    pub fn evict_oldest(&mut self, k: usize) -> usize {
        let k = k.min(self.stored.len());
        if k == 0 {
            return 0;
        }
        self.stored.drain(..k);
        self.grid.clear();
        for (id, s) in self.stored.iter().enumerate() {
            self.grid
                .insert(s.from_pos, s.to_pos, s.entry.departure, id as u32);
        }
        k
    }

    /// The entry with the given id (ids are dense: `0..len()`, in
    /// insertion order).
    pub fn entry(&self, id: u32) -> Option<&TruthEntry> {
        self.stored.get(id as usize).map(|s| &s.entry)
    }

    /// Iterates over stored truths in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TruthEntry> {
        self.stored.iter().map(|s| &s.entry)
    }

    /// Looks up a truth matching the request within the configured reuse
    /// radius and time window. Among matches, the spatially closest one is
    /// returned (ties by insertion order). Served by the grid index;
    /// agrees exactly with [`TruthStore::lookup_linear`].
    pub fn lookup(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<&TruthEntry> {
        self.lookup_scored(graph, from, to, departure, cfg)
            .map(|(_, _, e)| e)
    }

    /// Grid-indexed lookup also reporting the match's endpoint-distance
    /// score and entry id — the serving layer uses these to merge results
    /// across shards with deterministic tie-breaks.
    pub fn lookup_scored(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<(f64, u32, &TruthEntry)> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        let mut best: Option<(f64, u32)> = None;
        {
            let mut consider = Self::reuse_filter(&self.stored, fp, tp, departure, cfg, &mut best);
            self.grid.spatiotemporal_candidates(
                fp,
                tp,
                cfg.reuse_radius,
                departure,
                cfg.reuse_time_window,
                &mut consider,
            );
        }
        best.map(|(d, id)| (d, id, &self.stored[id as usize].entry))
    }

    /// [`TruthStore::lookup_scored`] restricted to candidate entries in
    /// the given origin cells (in this store's grid geometry). Shard
    /// routers use this so one shard probes only the cells it owns.
    pub fn lookup_scored_in_cells(
        &self,
        graph: &RoadGraph,
        origin_cells: &[(i32, i32)],
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<(f64, u32, &TruthEntry)> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        let mut best: Option<(f64, u32)> = None;
        {
            let mut consider = Self::reuse_filter(&self.stored, fp, tp, departure, cfg, &mut best);
            self.grid.spatiotemporal_candidates_in_cells(
                origin_cells,
                tp,
                cfg.reuse_radius,
                departure,
                cfg.reuse_time_window,
                &mut consider,
            );
        }
        best.map(|(d, id)| (d, id, &self.stored[id as usize].entry))
    }

    /// The spatial cell (in this store's grid geometry) of a point.
    pub fn cell_of(&self, p: Point) -> (i32, i32) {
        self.grid.cell_of_point(p)
    }

    /// The exact reuse filter shared by all lookup paths: time window,
    /// per-endpoint radius, closest-match with insertion-order ties.
    fn reuse_filter<'s>(
        stored: &'s [Stored],
        fp: Point,
        tp: Point,
        departure: TimeOfDay,
        cfg: &'s Config,
        best: &'s mut Option<(f64, u32)>,
    ) -> impl FnMut(u32) + 's {
        let radius_sq = cfg.reuse_radius * cfg.reuse_radius;
        move |id| {
            let s = &stored[id as usize];
            if s.entry.departure.circular_distance(departure) > cfg.reuse_time_window {
                return;
            }
            // Squared-distance pre-filter: the sqrt is only paid for
            // entries that actually match.
            let df_sq = s.from_pos.distance_sq(&fp);
            let dt_sq = s.to_pos.distance_sq(&tp);
            if df_sq > radius_sq || dt_sq > radius_sq {
                return;
            }
            let d = df_sq.sqrt() + dt_sq.sqrt();
            let better = match *best {
                None => true,
                Some((bd, bid)) => d < bd || (d == bd && id < bid),
            };
            if better {
                *best = Some((d, id));
            }
        }
    }

    /// Reference implementation of [`TruthStore::lookup`]: a full linear
    /// scan with the original semantics. Kept for differential tests and
    /// as the baseline in the `service` benchmark.
    pub fn lookup_linear(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<&TruthEntry> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        let radius_sq = cfg.reuse_radius * cfg.reuse_radius;
        let mut best: Option<(f64, &Stored)> = None;
        for s in &self.stored {
            if s.entry.departure.circular_distance(departure) > cfg.reuse_time_window {
                continue;
            }
            let df_sq = s.from_pos.distance_sq(&fp);
            let dt_sq = s.to_pos.distance_sq(&tp);
            if df_sq > radius_sq || dt_sq > radius_sq {
                continue;
            }
            let d = df_sq.sqrt() + dt_sq.sqrt();
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, s));
            }
        }
        best.map(|(_, s)| &s.entry)
    }

    /// Truths whose endpoints are within `radius` of the request endpoints
    /// regardless of time — used by route evaluation to compute confidence
    /// scores from nearby verified history. Returned in insertion order.
    pub fn nearby(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        radius: f64,
    ) -> Vec<&TruthEntry> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        let mut ids: Vec<u32> = Vec::new();
        self.grid.origin_candidates(fp, radius, |id| {
            let s = &self.stored[id as usize];
            if s.from_pos.distance(&fp) <= radius && s.to_pos.distance(&tp) <= radius {
                ids.push(id);
            }
        });
        ids.sort_unstable();
        ids.iter()
            .map(|&id| &self.stored[id as usize].entry)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost};
    use cp_roadnet::{generate_city, CityParams};
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn setup() -> (cp_roadnet::City, TruthStore, Config) {
        let city = generate_city(&CityParams::small(), 73).unwrap();
        (city, TruthStore::new(), Config::default())
    }

    fn path(city: &cp_roadnet::City, a: u32, b: u32) -> Path {
        dijkstra_path(
            &city.graph,
            NodeId(a),
            NodeId(b),
            distance_cost(&city.graph),
        )
        .unwrap()
    }

    #[test]
    fn exact_hit_is_found() {
        let (city, mut store, cfg) = setup();
        let p = path(&city, 0, 59);
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(8.0),
                path: p.clone(),
                confidence: 1.0,
            },
        );
        let hit = store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.5),
                &cfg,
            )
            .unwrap();
        assert_eq!(hit.path, p);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn nearby_endpoints_hit_within_radius() {
        let (city, mut store, cfg) = setup();
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(8.0),
                path: path(&city, 0, 59),
                confidence: 1.0,
            },
        );
        // Node 1 is ~200 m from node 0 (within the 300 m radius).
        assert!(store
            .lookup(
                &city.graph,
                NodeId(1),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
                &cfg
            )
            .is_some());
        // Node 5 is ~1 km away: miss.
        assert!(store
            .lookup(
                &city.graph,
                NodeId(5),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
                &cfg
            )
            .is_none());
    }

    #[test]
    fn time_window_is_respected() {
        let (city, mut store, cfg) = setup();
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(8.0),
                path: path(&city, 0, 59),
                confidence: 1.0,
            },
        );
        // 2 h window: 10:30 departure misses an 8:00 truth.
        assert!(store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(10.5),
                &cfg
            )
            .is_none());
        // Circular: 23:30 vs 00:30 is one hour apart.
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(23.5),
                path: path(&city, 0, 59),
                confidence: 1.0,
            },
        );
        assert!(store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(0.5),
                &cfg
            )
            .is_some());
    }

    #[test]
    fn closest_match_wins() {
        let (city, mut store, cfg) = setup();
        let p1 = path(&city, 1, 59);
        let p2 = path(&city, 0, 59);
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(1),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(9.0),
                path: p1,
                confidence: 1.0,
            },
        );
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(9.0),
                path: p2.clone(),
                confidence: 1.0,
            },
        );
        let hit = store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(9.0),
                &cfg,
            )
            .unwrap();
        assert_eq!(hit.path, p2);
    }

    #[test]
    fn nearby_ignores_time() {
        let (city, mut store, _) = setup();
        store.insert(
            &city.graph,
            TruthEntry {
                from: NodeId(0),
                to: NodeId(59),
                departure: TimeOfDay::from_hours(3.0),
                path: path(&city, 0, 59),
                confidence: 1.0,
            },
        );
        let near = store.nearby(&city.graph, NodeId(0), NodeId(59), 250.0);
        assert_eq!(near.len(), 1);
        assert!(store
            .nearby(&city.graph, NodeId(30), NodeId(59), 250.0)
            .is_empty());
    }

    #[test]
    fn empty_store_misses() {
        let (city, store, cfg) = setup();
        assert!(store.is_empty());
        assert!(store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
                &cfg
            )
            .is_none());
    }

    #[test]
    fn evict_oldest_removes_prefix_and_keeps_index_consistent() {
        let (city, mut store, cfg) = setup();
        for (i, h) in [(0u32, 8.0), (1, 9.0), (2, 10.0), (3, 11.0)] {
            store.insert(
                &city.graph,
                TruthEntry {
                    from: NodeId(i),
                    to: NodeId(59),
                    departure: TimeOfDay::from_hours(h),
                    path: path(&city, i, 59),
                    confidence: 1.0,
                },
            );
        }
        assert_eq!(store.evict_oldest(2), 2);
        assert_eq!(store.len(), 2);
        // The two oldest are gone; the two youngest still resolve through
        // the rebuilt grid at their exact keys.
        let mut strict = cfg.clone();
        strict.reuse_radius = 0.0;
        assert!(store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
                &strict
            )
            .is_none());
        assert!(store
            .lookup(
                &city.graph,
                NodeId(2),
                NodeId(59),
                TimeOfDay::from_hours(10.0),
                &strict
            )
            .is_some());
        // Over-asking clamps; an empty store evicts nothing.
        assert_eq!(store.evict_oldest(10), 2);
        assert_eq!(store.evict_oldest(1), 0);
        assert!(store.is_empty());
    }

    /// The grid path must agree with the linear reference on every query —
    /// same hit/miss, same entry, same closest-match tie-break — across
    /// randomized stores, radii, windows and grid geometries.
    #[test]
    fn grid_lookup_matches_linear_reference() {
        let city = generate_city(&CityParams::small(), 73).unwrap();
        let n = city.graph.node_count() as u32;
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        for (cell_m, bucket_s) in [
            (DEFAULT_CELL_M, DEFAULT_BUCKET_S),
            (125.0, 900.0),
            (1000.0, 21_600.0),
        ] {
            let mut store = TruthStore::with_geometry(cell_m, bucket_s);
            let mut cfg = Config::default();
            // A handful of route shapes is plenty; endpoints vary.
            let routes: Vec<Path> = (0..4).map(|i| path(&city, i, 59 - i)).collect();
            for i in 0..400u32 {
                let from = NodeId(rng.random_range(0..n));
                let to = NodeId(rng.random_range(0..n));
                store.insert(
                    &city.graph,
                    TruthEntry {
                        from,
                        to,
                        departure: TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY)),
                        path: routes[i as usize % routes.len()].clone(),
                        confidence: 1.0,
                    },
                );
            }
            for radius in [0.0, 150.0, 300.0, 900.0] {
                cfg.reuse_radius = radius;
                for window in [0.0, 1800.0, 7200.0, 43_200.0] {
                    cfg.reuse_time_window = window;
                    for q in 0..60 {
                        let from = NodeId(rng.random_range(0..n));
                        let to = NodeId(rng.random_range(0..n));
                        let t = TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY));
                        let grid = store.lookup(&city.graph, from, to, t, &cfg);
                        let linear = store.lookup_linear(&city.graph, from, to, t, &cfg);
                        match (grid, linear) {
                            (None, None) => {}
                            (Some(g), Some(l)) => {
                                assert!(
                                    std::ptr::eq(g, l),
                                    "query {q}: grid and linear disagree \
                                     (cell {cell_m}, bucket {bucket_s}, \
                                      radius {radius}, window {window})"
                                );
                            }
                            (g, l) => panic!(
                                "query {q}: hit mismatch grid={} linear={} \
                                 (cell {cell_m}, radius {radius}, window {window})",
                                g.is_some(),
                                l.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    /// `nearby` via the origin index agrees with a brute-force filter.
    #[test]
    fn nearby_matches_brute_force() {
        let city = generate_city(&CityParams::small(), 91).unwrap();
        let n = city.graph.node_count() as u32;
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        let mut store = TruthStore::with_geometry(200.0, 3600.0);
        let p = path(&city, 0, 59);
        for _ in 0..300 {
            let from = NodeId(rng.random_range(0..n));
            let to = NodeId(rng.random_range(0..n));
            store.insert(
                &city.graph,
                TruthEntry {
                    from,
                    to,
                    departure: TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY)),
                    path: p.clone(),
                    confidence: 1.0,
                },
            );
        }
        for radius in [100.0, 300.0, 900.0] {
            for _ in 0..40 {
                let from = NodeId(rng.random_range(0..n));
                let to = NodeId(rng.random_range(0..n));
                let got = store.nearby(&city.graph, from, to, radius);
                let fp = city.graph.position(from);
                let tp = city.graph.position(to);
                let want: Vec<&TruthEntry> = store
                    .iter()
                    .filter(|e| {
                        city.graph.position(e.from).distance(&fp) <= radius
                            && city.graph.position(e.to).distance(&tp) <= radius
                    })
                    .collect();
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!(std::ptr::eq(*g, *w));
                }
            }
        }
    }
}
