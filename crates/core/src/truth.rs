//! Verified-truth store and reuse (paper §II-B1, "reuse truth" /
//! "verified truth" components).
//!
//! Every resolved request deposits its verified best route, keyed by the
//! OD pair and a departure-time tag. A new request *hits* the store when
//! its endpoints lie within the reuse radius of a stored truth's endpoints
//! and its departure time falls within the reuse window (circular,
//! time-of-day) — in which case the stored route is returned immediately,
//! saving both computation and crowd cost.

use crate::config::Config;
use cp_roadnet::{NodeId, Path, RoadGraph};
use cp_traj::TimeOfDay;

/// One verified truth.
#[derive(Debug, Clone)]
pub struct TruthEntry {
    /// Request origin the truth was verified for.
    pub from: NodeId,
    /// Request destination.
    pub to: NodeId,
    /// Departure-time tag.
    pub departure: TimeOfDay,
    /// The verified best route.
    pub path: Path,
    /// Confidence at verification time (1.0 for crowd-verified truths).
    pub confidence: f64,
}

/// The truth database.
#[derive(Debug, Default)]
pub struct TruthStore {
    entries: Vec<TruthEntry>,
}

impl TruthStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored truths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a verified truth.
    pub fn insert(&mut self, entry: TruthEntry) {
        self.entries.push(entry);
    }

    /// Iterates over stored truths.
    pub fn iter(&self) -> impl Iterator<Item = &TruthEntry> {
        self.entries.iter()
    }

    /// Looks up a truth matching the request within the configured reuse
    /// radius and time window. Among matches, the spatially closest one is
    /// returned (ties by insertion order).
    pub fn lookup(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<&TruthEntry> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        let mut best: Option<(f64, &TruthEntry)> = None;
        for e in &self.entries {
            if e.departure.circular_distance(departure) > cfg.reuse_time_window {
                continue;
            }
            let df = graph.position(e.from).distance(&fp);
            let dt = graph.position(e.to).distance(&tp);
            if df > cfg.reuse_radius || dt > cfg.reuse_radius {
                continue;
            }
            let d = df + dt;
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, e));
            }
        }
        best.map(|(_, e)| e)
    }

    /// Truths whose endpoints are within `radius` of the request endpoints
    /// regardless of time — used by route evaluation to compute confidence
    /// scores from nearby verified history.
    pub fn nearby(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        radius: f64,
    ) -> Vec<&TruthEntry> {
        let fp = graph.position(from);
        let tp = graph.position(to);
        self.entries
            .iter()
            .filter(|e| {
                graph.position(e.from).distance(&fp) <= radius
                    && graph.position(e.to).distance(&tp) <= radius
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost};
    use cp_roadnet::{generate_city, CityParams};

    fn setup() -> (cp_roadnet::City, TruthStore, Config) {
        let city = generate_city(&CityParams::small(), 73).unwrap();
        (city, TruthStore::new(), Config::default())
    }

    fn path(city: &cp_roadnet::City, a: u32, b: u32) -> Path {
        dijkstra_path(
            &city.graph,
            NodeId(a),
            NodeId(b),
            distance_cost(&city.graph),
        )
        .unwrap()
    }

    #[test]
    fn exact_hit_is_found() {
        let (city, mut store, cfg) = setup();
        let p = path(&city, 0, 59);
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(8.0),
            path: p.clone(),
            confidence: 1.0,
        });
        let hit = store
            .lookup(&city.graph, NodeId(0), NodeId(59), TimeOfDay::from_hours(8.5), &cfg)
            .unwrap();
        assert_eq!(hit.path, p);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn nearby_endpoints_hit_within_radius() {
        let (city, mut store, cfg) = setup();
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(8.0),
            path: path(&city, 0, 59),
            confidence: 1.0,
        });
        // Node 1 is ~200 m from node 0 (within the 300 m radius).
        assert!(store
            .lookup(&city.graph, NodeId(1), NodeId(59), TimeOfDay::from_hours(8.0), &cfg)
            .is_some());
        // Node 5 is ~1 km away: miss.
        assert!(store
            .lookup(&city.graph, NodeId(5), NodeId(59), TimeOfDay::from_hours(8.0), &cfg)
            .is_none());
    }

    #[test]
    fn time_window_is_respected() {
        let (city, mut store, cfg) = setup();
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(8.0),
            path: path(&city, 0, 59),
            confidence: 1.0,
        });
        // 2 h window: 10:30 departure misses an 8:00 truth.
        assert!(store
            .lookup(&city.graph, NodeId(0), NodeId(59), TimeOfDay::from_hours(10.5), &cfg)
            .is_none());
        // Circular: 23:30 vs 00:30 is one hour apart.
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(23.5),
            path: path(&city, 0, 59),
            confidence: 1.0,
        });
        assert!(store
            .lookup(&city.graph, NodeId(0), NodeId(59), TimeOfDay::from_hours(0.5), &cfg)
            .is_some());
    }

    #[test]
    fn closest_match_wins() {
        let (city, mut store, cfg) = setup();
        let p1 = path(&city, 1, 59);
        let p2 = path(&city, 0, 59);
        store.insert(TruthEntry {
            from: NodeId(1),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(9.0),
            path: p1,
            confidence: 1.0,
        });
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(9.0),
            path: p2.clone(),
            confidence: 1.0,
        });
        let hit = store
            .lookup(&city.graph, NodeId(0), NodeId(59), TimeOfDay::from_hours(9.0), &cfg)
            .unwrap();
        assert_eq!(hit.path, p2);
    }

    #[test]
    fn nearby_ignores_time() {
        let (city, mut store, _) = setup();
        store.insert(TruthEntry {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(3.0),
            path: path(&city, 0, 59),
            confidence: 1.0,
        });
        let near = store.nearby(&city.graph, NodeId(0), NodeId(59), 250.0);
        assert_eq!(near.len(), 1);
        assert!(store.nearby(&city.graph, NodeId(30), NodeId(59), 250.0).is_empty());
    }

    #[test]
    fn empty_store_misses() {
        let (city, store, cfg) = setup();
        assert!(store.is_empty());
        assert!(store
            .lookup(&city.graph, NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0), &cfg)
            .is_none());
    }
}
