//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the property tests
//! link against this minimal reimplementation: strategies are generators
//! (a [`Strategy`] produces a value from a seeded RNG), the [`proptest!`]
//! macro expands each property into a plain `#[test]` that runs N cases,
//! and [`prop_assert!`]/[`prop_assert_eq!`] report the failing case.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failure reports the generated case but does not
//!   minimise it;
//! * **derived seeding** — each test's RNG is seeded from a hash of the
//!   test name, so runs are deterministic across machines;
//! * only the strategy combinators this workspace uses are provided
//!   (`any`, integer/float ranges, `collection::vec`, `prop_map`).

#![warn(missing_docs)]

use std::marker::PhantomData;

pub mod test_runner {
    //! Test-case driver: configuration, RNG, and failure type.

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator state for one property test
    /// (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary byte string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: holds the configuration and the RNG.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner for the named property.
        pub fn new(config: Config, name: &str) -> Self {
            TestRunner {
                rng: TestRng::from_name(name),
                config,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

use test_runner::TestRng;

/// A value generator: the core abstraction of this shim.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A vector-length specification: an exact length or a half-open
    /// range of lengths (mirroring real proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy drawing its length from `len` (an exact `usize`
    /// or a `Range<usize>`) and its elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.max - self.len.min) as u64;
            let n = self.len.min + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declares property tests: each `fn` becomes a `#[test]` running the
/// configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), runner.rng());
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (3u64..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).new_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
        let xs = crate::collection::vec(any::<bool>(), 9).new_value(&mut rng);
        assert_eq!(xs.len(), 9);
        for _ in 0..50 {
            let ys = crate::collection::vec(any::<bool>(), 2..6).new_value(&mut rng);
            assert!((2..6).contains(&ys.len()));
        }
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let mut rng = crate::test_runner::TestRng::from_name("tuples");
        for _ in 0..100 {
            let (a, b, c, d) = (0u32..10, 5u32..9, 0.0f64..1.0, 0usize..2).new_value(&mut rng);
            assert!(a < 10);
            assert!((5..9).contains(&b));
            assert!((0.0..1.0).contains(&c));
            assert!(d < 2);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::from_name("map");
        let doubled = (1u32..10).prop_map(|x| x * 2).new_value(&mut rng);
        assert_eq!(doubled % 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts pass, early return works.
        #[test]
        fn macro_roundtrip(a in 0u32..50, b in 0.0f64..1.0) {
            if a == 0 {
                return Ok(());
            }
            prop_assert!(a < 50);
            prop_assert!((0.0..1.0).contains(&b), "b = {}", b);
            prop_assert_eq!(a as u64 + 1, (a + 1) as u64);
        }
    }

    proptest! {
        /// Default-config arm of the macro.
        #[test]
        fn macro_default_config(x in 1u8..=255) {
            prop_assert!(x >= 1);
        }
    }
}
