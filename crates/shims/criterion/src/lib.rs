//! Offline stand-in for the subset of the `criterion` benchmarking crate
//! this workspace uses.
//!
//! The build environment has no crates.io access, so benches link against
//! this std-timer harness instead: each benchmark is warmed up, then run
//! for a fixed wall-clock budget, and the per-iteration mean / best times
//! are printed in criterion-like one-line format. There is no statistical
//! analysis, HTML report, or regression tracking — just honest timings
//! suitable for A/B comparisons within one run.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings shared by all benchmarks in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(name);
    }

    /// Opens a named group of related benchmarks. The group carries its
    /// own copy of the measurement settings: `sample_size` tweaks apply
    /// to this group only and never leak into later groups.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            _criterion: self,
            name,
        }
    }
}

/// A named group of benchmarks, printed with a shared prefix.
pub struct BenchmarkGroup<'a> {
    /// Held to mirror criterion's exclusive-borrow API shape.
    _criterion: &'a mut Criterion,
    /// This group's own wall-clock budget per benchmark.
    measurement_time: Duration,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the nominal sample count (scales this group's budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measurement_time = Duration::from_millis(4 * n.clamp(1, 250) as u64);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    budget: Duration,
    /// (iterations, total elapsed) of the measured phase.
    measured: Option<(u64, Duration)>,
    best: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            measured: None,
            best: Duration::MAX,
        }
    }

    /// Runs `f` repeatedly: a short warm-up, then batches until the
    /// wall-clock budget is spent. The closure's return value is passed
    /// through a black box so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for batches of ~1ms or more.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let first = t0.elapsed();
        let batch =
            (Duration::from_millis(1).as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u64;

        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            total += dt;
            iters += batch;
            let per_iter = dt / batch as u32;
            if per_iter < self.best {
                self.best = per_iter;
            }
        }
        self.measured = Some((iters.max(1), total));
    }

    fn report(&self, name: &str) {
        match self.measured {
            Some((iters, total)) => {
                let mean = total / iters as u32;
                println!(
                    "{name:<48} time: [mean {} best {}]  ({iters} iterations)",
                    fmt_duration(mean),
                    fmt_duration(self.best),
                );
            }
            None => println!("{name:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // shim has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("b", 3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
