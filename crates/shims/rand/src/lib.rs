//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no network access and no crates.io registry
//! cache, so the workspace vendors a minimal, dependency-free
//! reimplementation of the surface it needs:
//!
//! * [`rngs::SmallRng`] — a small, fast, *non-cryptographic* generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seedable deterministically via [`SeedableRng::seed_from_u64`];
//! * [`RngExt`] — `random_range` over integer and float ranges and
//!   `random_bool`, blanket-implemented for every [`RngCore`];
//! * [`SeedableRng`] — explicit seeding.
//!
//! Determinism is the only contract the simulation relies on: the same
//! seed always yields the same stream. Statistical quality is that of
//! xoshiro256++, which is far more than the simulation needs. Nothing
//! here is suitable for cryptography.

#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Explicit, reproducible seeding.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it into a full
    /// seed with SplitMix64 (the expansion the real `rand` crate uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for all generators.
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, integer or
    /// float).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a single uniform sample.
///
/// Blanket-implemented for `Range` and `RangeInclusive` over every
/// [`SampleUniform`] type, mirroring the real crate's structure (one
/// generic impl, so type inference behaves identically).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)` (or `[start, end]` when
    /// `inclusive`).
    fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_in(rng, start, end, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self, _inclusive: bool) -> Self {
                start + (next_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong for
    /// simulation purposes. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The generator's internal state, for persistence. Feeding it
        /// back through [`SmallRng::from_state`] resumes the exact
        /// stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator from [`SmallRng::state`] output. An
        /// all-zero state (xoshiro's fixed point, which `state` can
        /// never return) is nudged the same way as `from_seed`.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAAD_5EED, 0x1234_5678];
            }
            SmallRng { s }
        }
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro;
            // nudge it to a fixed non-zero state.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAAD_5EED, 0x1234_5678];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.1));
    }

    #[test]
    fn float_range_distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mean: f64 = (0..10_000)
            .map(|_| rng.random_range(0.0f64..1.0))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
