//! City-commute workload: a medium city serving a stream of requests with
//! spatio-temporal locality, reporting the resolution mix, crowd cost and
//! accuracy as the truth store warms up.
//!
//! ```sh
//! cargo run --release --example city_commute
//! ```

use crowdplanner::prelude::*;
use crowdplanner::sim::{Scale, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SimWorld::build(Scale::Medium, 7)?;
    println!(
        "medium city: {} intersections, {} landmarks, {} trips",
        world.city.graph.node_count(),
        world.landmarks.len(),
        world.trips.trips.len()
    );

    let cfg = Config::default();
    let desk = world.shared_crowd(200, 15, 7, cfg.eta_quota);
    let mut planner = world.owned_planner(desk, cfg)?;

    // Request stream with locality: 60 base OD pairs, each requested up to
    // three times at nearby departure times (commuters repeat journeys).
    let base = world.request_stream(60, 6, 99);
    let mut requests: Vec<(NodeId, NodeId, TimeOfDay)> = Vec::new();
    for (i, &(a, b)) in base.iter().enumerate() {
        let h = if i % 2 == 0 { 8.0 } else { 18.0 };
        requests.push((a, b, TimeOfDay::from_hours(h)));
        if i % 2 == 0 {
            requests.push((a, b, TimeOfDay::from_hours(h + 0.5)));
        }
        if i % 3 == 0 {
            requests.push((a, b, TimeOfDay::from_hours(h - 0.4)));
        }
    }

    let mut correct = 0usize;
    let mut by_resolution: std::collections::HashMap<Resolution, usize> =
        std::collections::HashMap::new();
    println!("\nserving {} requests…", requests.len());
    for (i, &(a, b, t)) in requests.iter().enumerate() {
        let oracle = world.oracle(a, b)?;
        let rec = planner.handle_request(a, b, t, &oracle)?;
        if world.is_best(&rec.path) {
            correct += 1;
        }
        *by_resolution.entry(rec.resolution).or_insert(0) += 1;
        if (i + 1) % 30 == 0 {
            let s = planner.stats();
            println!(
                "  after {:>3} requests: reuse {:>3} | crowd {:>3} | accuracy so far {:.1}%",
                i + 1,
                s.reuse_hits,
                s.crowd_tasks,
                100.0 * correct as f64 / (i + 1) as f64
            );
        }
    }

    let s = planner.stats();
    println!("\n=== workload report ===");
    println!("requests        : {}", s.requests);
    for r in [
        Resolution::ReusedTruth,
        Resolution::Agreement,
        Resolution::Confident,
        Resolution::Crowd,
        Resolution::Fallback,
    ] {
        println!(
            "  {:<13}: {:>4} ({:.1}%)",
            format!("{r:?}"),
            by_resolution.get(&r).copied().unwrap_or(0),
            100.0 * by_resolution.get(&r).copied().unwrap_or(0) as f64 / s.requests as f64
        );
    }
    println!(
        "crowd cost      : {} questions over {} tasks ({:.2} questions/request overall)",
        s.total_questions,
        s.crowd_tasks,
        s.total_questions as f64 / s.requests as f64
    );
    println!(
        "accuracy        : {:.1}% of answers match the driver-consensus route",
        100.0 * correct as f64 / s.requests as f64
    );
    println!("verified truths : {}", planner.truths().len());
    Ok(())
}
