//! Crowd vs machine: how much does crowdsourcing actually help?
//!
//! Compares three systems on the same request set:
//!  * each single source alone (the paper's §I motivation);
//!  * machine-only TR (agreement + confidence, crowd disabled);
//!  * full CrowdPlanner (TR + CR).
//!
//! ```sh
//! cargo run --release --example crowd_vs_machine
//! ```

use crowdplanner::prelude::*;
use crowdplanner::sim::{Scale, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SimWorld::build(Scale::Medium, 13)?;
    let requests = world.request_stream(80, 6, 31);
    let departure = TimeOfDay::from_hours(8.0);

    // --- Single sources ---
    let generator = CandidateGenerator::new(&world.city.graph, &world.trips.trips);
    let mut source_hits: std::collections::HashMap<SourceKind, usize> =
        std::collections::HashMap::new();
    for &(a, b) in &requests {
        for c in generator.candidates(a, b, departure) {
            if world.is_best(&c.path) {
                *source_hits.entry(c.source).or_insert(0) += 1;
            }
        }
    }
    println!(
        "=== single-source accuracy over {} requests ===",
        requests.len()
    );
    for s in SourceKind::ALL {
        println!(
            "  {:<12}: {:>5.1}%",
            s.name(),
            100.0 * source_hits.get(&s).copied().unwrap_or(0) as f64 / requests.len() as f64
        );
    }

    // --- Machine-only (TR): crowd disabled by giving it zero workers ---
    let empty_desk = {
        let pop = WorkerPopulation::generate(
            &world.city.graph,
            &PopulationParams {
                workers: 1,
                ..PopulationParams::default()
            },
            1,
        );
        std::sync::Arc::new(SharedCrowd::new(
            Platform::new(pop, AnswerModel::default(), 1),
            5,
        ))
    };
    let mut machine = world.owned_planner(
        empty_desk,
        Config {
            // An unanswerable deadline disables the crowd: every contested
            // request falls back to the best machine guess.
            task_deadline: 0.1,
            eta_time: 0.999,
            ..Config::default()
        },
    )?;

    // --- Full system ---
    let cfg = Config::default();
    let desk = world.shared_crowd(200, 15, 13, cfg.eta_quota);
    let mut full = world.owned_planner(desk, cfg)?;

    let mut machine_correct = 0usize;
    let mut full_correct = 0usize;
    for &(a, b) in &requests {
        let oracle = world.oracle(a, b)?;
        let m = machine.handle_request(a, b, departure, &oracle)?;
        if world.is_best(&m.path) {
            machine_correct += 1;
        }
        let f = full.handle_request(a, b, departure, &oracle)?;
        if world.is_best(&f.path) {
            full_correct += 1;
        }
    }

    println!("\n=== system accuracy ===");
    println!(
        "  machine-only TR : {:>5.1}%  (fallbacks {})",
        100.0 * machine_correct as f64 / requests.len() as f64,
        machine.stats().fallbacks
    );
    println!(
        "  full CrowdPlanner: {:>5.1}%  (crowd tasks {}, {:.1} questions/task)",
        100.0 * full_correct as f64 / requests.len() as f64,
        full.stats().crowd_tasks,
        full.stats().total_questions as f64 / full.stats().crowd_tasks.max(1) as f64
    );
    println!(
        "\ncrowdsourcing lifted accuracy by {:.1} percentage points",
        100.0 * (full_correct as f64 - machine_correct as f64) / requests.len() as f64
    );
    Ok(())
}
