//! Survey designer: a deep dive into task generation.
//!
//! Shows, for one contested request: the candidate routes of each source,
//! the beneficial landmarks, the selections made by BruteForce / ILS /
//! GreedySelect, and the ID3 question tree with its expected question
//! count versus naive orderings.
//!
//! ```sh
//! cargo run --release --example survey_designer
//! ```

use cp_core::taskgen::{build_question_tree, QuestionNode, SelectionAlgorithm, SelectionProblem};
use crowdplanner::prelude::*;
use crowdplanner::sim::{Scale, SimWorld};

fn print_tree(node: &QuestionNode, indent: usize, world: &SimWorld) {
    let pad = "  ".repeat(indent);
    match node {
        QuestionNode::Leaf { route } => println!("{pad}-> candidate #{route}"),
        QuestionNode::Dead => println!("{pad}-> (no candidate matches)"),
        QuestionNode::Ask { landmark, yes, no } => {
            let lm = world.landmarks.get(*landmark);
            println!(
                "{pad}Q: do you drive past landmark {} ({:?}, significance {:.2})?",
                landmark.0,
                lm.category,
                world.significance[landmark.index()]
            );
            println!("{pad} yes:");
            print_tree(yes, indent + 1, world);
            println!("{pad} no:");
            print_tree(no, indent + 1, world);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SimWorld::build(Scale::Small, 23)?;
    let generator = CandidateGenerator::new(&world.city.graph, &world.trips.trips);

    // Find a request where the sources genuinely disagree.
    let mut chosen = None;
    for (a, b) in world.request_stream(200, 5, 77) {
        let cands = generator.candidates(a, b, TimeOfDay::from_hours(8.0));
        let distinct = distinct_candidates(&cands);
        if distinct.len() >= 3 {
            chosen = Some((a, b, cands, distinct));
            break;
        }
    }
    let (a, b, cands, distinct) = chosen.expect("some request must be contested");
    println!("request: node {} -> node {}\n", a.0, b.0);

    println!("=== candidates ===");
    for c in &cands {
        println!(
            "  {:<12} {:>5.0} m, {:>4.0} s, {} lights",
            c.source.name(),
            c.path.length(&world.city.graph),
            c.path.travel_time(&world.city.graph),
            c.path.traffic_lights(&world.city.graph)
        );
    }
    println!(
        "  -> {} distinct routes after deduplication",
        distinct.len()
    );

    // Calibrate to landmark-based routes.
    let mut routes = Vec::new();
    for (path, srcs) in &distinct {
        let lr = LandmarkRoute::from_path(
            &world.city.graph,
            &world.landmarks,
            path,
            &world.calibration,
        );
        println!(
            "  candidate #{} ({:?}): {} landmarks on route",
            routes.len(),
            srcs.iter().map(|s| s.name()).collect::<Vec<_>>(),
            lr.len()
        );
        routes.push(lr);
    }

    let problem = SelectionProblem::prepare(&routes, &world.significance)?;
    println!(
        "\n=== landmark selection ===\nbeneficial landmarks: {} | k in [{}, {}]",
        problem.items().len(),
        problem.k_min(),
        problem.k_max()
    );
    for alg in SelectionAlgorithm::ALL {
        let sel = alg.run(&problem, usize::MAX)?;
        println!(
            "  {:<12}: {:?} (mean significance {:.3})",
            alg.name(),
            sel.landmarks.iter().map(|l| l.0).collect::<Vec<_>>(),
            sel.value
        );
    }

    // Build and show the ID3 tree for the greedy selection.
    let sel = SelectionAlgorithm::Greedy.run(&problem, usize::MAX)?;
    let questions: Vec<(LandmarkId, f64)> = sel
        .landmarks
        .iter()
        .map(|&l| (l, world.significance[l.index()]))
        .collect();
    let weights = vec![1.0; routes.len()];
    let tree = build_question_tree(&routes, &weights, &questions);
    println!("\n=== ID3 question tree ===");
    print_tree(&tree.root, 0, &world);
    println!(
        "\nexpected questions (ID3)    : {:.2}",
        tree.expected_questions(&weights)
    );

    // Compare with naive orderings: a fixed significance-descending chain
    // asks every question regardless of answers.
    println!(
        "fixed-order upper bound     : {:.2} (ask all selected questions)",
        questions.len() as f64
    );
    println!(
        "information-theoretic floor : {:.2} (log2 of {} candidates)",
        (routes.len() as f64).log2(),
        routes.len()
    );
    Ok(())
}
