//! Quickstart: one route request through the full CrowdPlanner pipeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crowdplanner::prelude::*;
use crowdplanner::sim::{Scale, SimWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small simulated world: city + landmarks + driver trip
    //    histories + LBSN check-ins + inferred landmark significance.
    let world = SimWorld::build(Scale::Small, 42)?;
    println!(
        "world: {} intersections, {} landmarks, {} historical trips, {} check-ins",
        world.city.graph.node_count(),
        world.landmarks.len(),
        world.trips.trips.len(),
        world.checkins.len()
    );

    // 2. A crowd of workers with some answer history, behind a shared
    //    desk: at most η_#q concurrently outstanding tasks per worker.
    let cfg = Config::default();
    let desk = world.shared_crowd(120, 10, 42, cfg.eta_quota);

    // 3. The CrowdPlanner server — owned and `Send + 'static`.
    let mut planner = world.owned_planner(desk, cfg)?;

    // 4. A request: cross-town journey at the morning peak.
    let (from, to) = (NodeId(0), NodeId(59));
    let departure = TimeOfDay::from_hours(8.0);

    // The oracle stands in for the crowd's collective knowledge: it knows
    // which landmarks the experienced-driver consensus route passes. The
    // server never sees it directly — only noisy worker answers.
    let oracle = world.oracle(from, to)?;

    let rec = planner.handle_request(from, to, departure, &oracle)?;

    println!("\nrecommendation for node {} -> node {}:", from.0, to.0);
    println!("  resolved by : {:?}", rec.resolution);
    println!("  confidence  : {:.2}", rec.confidence);
    println!(
        "  route       : {} edges, {:.0} m, {:.0} s free-flow, {} lights",
        rec.path.len(),
        rec.path.length(&world.city.graph),
        rec.path.travel_time(&world.city.graph),
        rec.path.traffic_lights(&world.city.graph)
    );
    println!("  questions   : {}", rec.questions_asked);
    println!("  workers     : {}", rec.workers_asked);
    println!(
        "  matches driver-consensus best route: {}",
        world.is_best(&rec.path)
    );

    // 5. Ask again: the verified truth is reused, no crowd cost.
    let again = planner.handle_request(from, to, departure, &oracle)?;
    println!(
        "\nsecond identical request resolved by: {:?}",
        again.resolution
    );
    assert_eq!(again.resolution, Resolution::ReusedTruth);

    let s = planner.stats();
    println!(
        "\nstats: {} requests | {} reuse | {} agreement | {} confident | {} crowd | {} fallback",
        s.requests, s.reuse_hits, s.agreements, s.confident, s.crowd_tasks, s.fallbacks
    );
    Ok(())
}
