//! Open-loop load generator over the multi-city serving platform.
//!
//! Instead of the old closed-batch thread sweep (which can never observe
//! queueing delay — a closed loop only issues a request when the last
//! one finished), this drives the platform the way real traffic does:
//! Poisson arrivals at a target rate, submitted through the non-blocking
//! `Platform::submit`, with per-request sojourn latency (queue wait +
//! service time) read back from each `Ticket`. Sweeping the target rate
//! shows the latency knee and the admission controller shedding load
//! once the ingress queue saturates.
//!
//! Two cities share one platform: a Medium "metro" taking most of the
//! traffic and a Small "satellite town" taking the rest. Each city has
//! its own sharded ingress queue; `--metro-weight <n>` (default 4)
//! sets the metro's weighted-DRR dispatch quantum, and a per-city line
//! under each rate shows both cities' admissions, sheds and adaptive
//! controller state.
//!
//! With `--crowd`, both cities are registered **crowd-backed** (the
//! owned `CrowdResolver` pipeline on the resident pool): each city's
//! resolvers share one quota-capped `SharedCrowd` desk, the sweep runs
//! at lower rates (crowd tasks are orders of magnitude slower than the
//! machine path), and the table gains desk-contention columns.
//!
//! With `--batch`, workers dequeue coalesced runs of requests sharing
//! `(city, origin cell)` — runs span time buckets — and mine them fused
//! (one popularity expansion / locality scan per origin, one period
//! aggregation per bucket, reused across batches via the per-city
//! `MiningArtifactCache`) — the fused-mining share, artifact-cache hit
//! rate and run count appear as extra columns. `--adaptive` batches
//! with the self-tuning collection window instead of the fixed one
//! (the chosen-delay column shows where the controller settled).
//!
//! With `--trace`, cities register with sampled span tracing enabled
//! and each rate gains an attribution line: the top-3 pipeline stages
//! by share of the end-to-end p95 sojourn, and the fraction of
//! attributed time spent blocked on contended locks.
//!
//! With `--http [addr]`, the sweep is skipped entirely: the two-city
//! platform is built once and served over HTTP by `cp-gateway` (default
//! `127.0.0.1:8080`) — `GET /route`, `/stats`, `/trace`, `/healthz`.
//! The process shuts down **gracefully**: type `stop` (or close stdin)
//! and the gateway drains its connections before the platform drains
//! its queue.
//!
//! With `--snapshot-dir <dir>` (serve mode), the platform runs with
//! durability on: committed resolutions stream into a write-ahead log
//! under `<dir>`, existing state (snapshot + WAL) is **recovered on
//! startup**, and a checkpoint (snapshot + log truncation) is written
//! on clean exit — kill the process, restart, and the truth store and
//! crowd answer history are intact.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_city               # machine-only
//! cargo run --release --example serve_city -- --crowd    # crowd-backed
//! cargo run --release --example serve_city -- --batch    # + coalescing
//! cargo run --release --example serve_city -- --adaptive # + self-tuning window
//! cargo run --release --example serve_city -- --trace    # + stage attribution
//! cargo run --release --example serve_city -- --http     # HTTP edge on :8080
//! cargo run --release --example serve_city -- --http --snapshot-dir /tmp/cp  # durable
//! cargo run --release --example serve_city -- --crowd --chaos 7  # + fault injection
//! ```
//!
//! With `--chaos <seed>`, the platform runs its seeded chaos engine
//! (the standard plan: 10% crowd no-shows + 1% slow workers), crowd
//! cities get a circuit breaker, and each sweep step gains a line with
//! the injected-fault counts, per-city breaker state and whether the
//! step ran degraded (any breaker not closed).

use cp_gateway::{Gateway, GatewayConfig};
use cp_service::{
    BatchConfig, BreakerConfig, ChaosConfig, DurabilityConfig, Platform, PlatformConfig, Request,
    ServiceConfig, ServiceError, Stage, Ticket, TraceConfig,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// One city's request pool: its platform id and the OD pairs traffic is
/// drawn from.
struct CityTraffic {
    id: cp_service::CityId,
    ods: Vec<(cp_roadnet::NodeId, cp_roadnet::NodeId)>,
    /// Share of the total arrival stream routed here.
    share: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Builds the shared two-city platform (85/15 metro/town) exactly as
/// each sweep step does, honouring the resolution/batching/tracing
/// flags.
fn build_platform(
    metro: &SimWorld,
    metro_world: &std::sync::Arc<cp_service::World>,
    town: &SimWorld,
    town_world: &std::sync::Arc<cp_service::World>,
    workers: usize,
    crowd: bool,
    batch: bool,
    adaptive: bool,
    trace: bool,
    metro_weight: u32,
    snapshot_dir: Option<&std::path::Path>,
    chaos_seed: Option<u64>,
) -> (Platform, [CityTraffic; 2]) {
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 512,
        maintenance: None,
        batch: batch.then(|| {
            if adaptive {
                BatchConfig::adaptive(16, Duration::from_millis(2))
            } else {
                BatchConfig::default()
            }
        }),
        durability: snapshot_dir.map(DurabilityConfig::new),
        chaos: chaos_seed.map(ChaosConfig::new),
    });
    let service_cfg = || {
        let mut cfg = ServiceConfig::default();
        if trace {
            // Counters on every request, one full trace per 64
            // requests kept in a 32-entry ring per city.
            cfg.trace = TraceConfig::sampled(64, 32);
        }
        cfg
    };
    let register = |sim: &SimWorld, world: &std::sync::Arc<cp_service::World>, seed: u64| {
        if crowd {
            // 200 workers per city behind a shared desk; at most 3
            // concurrently outstanding tasks per human worker. Under
            // chaos the city also gets a circuit breaker, so injected
            // no-show storms degrade it to machine-only instead of
            // hammering a failing crowd.
            let mut serving = sim.crowd_serving(200, 15, seed, 3);
            if chaos_seed.is_some() {
                serving = serving.with_breaker(BreakerConfig::default());
            }
            platform
                .register_city_crowd(world.clone(), service_cfg(), serving)
                .expect("crowd serving inputs are valid")
        } else {
            platform.register_city(world.clone(), service_cfg())
        }
    };
    let cities = [
        CityTraffic {
            id: register(metro, metro_world, 42),
            ods: metro.request_stream(600, 4, 777),
            share: 0.85,
        },
        CityTraffic {
            id: register(town, town_world, 7),
            ods: town.request_stream(120, 2, 778),
            share: 1.0, // remainder
        },
    ];
    // The metro carries ~85% of arrivals; give it a matching DRR
    // quantum so a saturated platform serves the two queues roughly in
    // proportion to their traffic instead of strictly alternating.
    // The town keeps weight 1 — the deficit guarantees it can never be
    // starved, whatever the metro's weight.
    assert!(platform.set_city_weight(cities[0].id, metro_weight));
    (platform, cities)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let crowd = args.iter().any(|a| a == "--crowd");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let batch = adaptive || args.iter().any(|a| a == "--batch");
    let trace = args.iter().any(|a| a == "--trace");
    // `--metro-weight <n>`: the metro's DRR dispatch weight (the town
    // stays at 1). Defaults to 4 — roughly the 85/15 traffic split.
    let metro_weight: u32 = args
        .iter()
        .position(|a| a == "--metro-weight")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--metro-weight takes an integer"))
        .unwrap_or(4);
    // `--http` serves instead of sweeping; an optional following
    // argument overrides the bind address.
    let http_addr: Option<String> = args.iter().position(|a| a == "--http").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string())
    });
    // `--snapshot-dir <dir>` (serve mode only): durability on, recover
    // on startup, checkpoint on clean exit.
    let snapshot_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--snapshot-dir")
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .map(std::path::PathBuf::from);
    // `--chaos <seed>`: run the seeded chaos engine (standard fault
    // plan) on every platform this process builds; the seed defaults
    // to 7 so `--chaos` alone is reproducible too.
    let chaos_seed: Option<u64> = args.iter().position(|a| a == "--chaos").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(|v| v.parse().expect("--chaos takes an integer seed"))
            .unwrap_or(7)
    });
    if snapshot_dir.is_some() && http_addr.is_none() {
        eprintln!("--snapshot-dir only applies to serve mode (--http); ignoring for the sweep");
    }
    let t0 = Instant::now();
    println!("building worlds (Medium metro + Small satellite)…");
    let metro = SimWorld::build(Scale::Medium, 42).expect("metro world");
    let town = SimWorld::build(Scale::Small, 7).expect("town world");
    let metro_world = metro.service_world();
    let town_world = town.service_world();
    println!(
        "  metro: {} intersections, {} trips; town: {} intersections; built in {:.1?}\n",
        metro.city.graph.node_count(),
        metro.trips.trips.len(),
        town.city.graph.node_count(),
        t0.elapsed()
    );

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    if let Some(addr) = http_addr {
        // Serve mode: one long-lived platform behind the HTTP edge, no
        // sweep.
        let (platform, cities) = build_platform(
            &metro,
            &metro_world,
            &town,
            &town_world,
            workers,
            crowd,
            batch,
            adaptive,
            trace,
            metro_weight,
            snapshot_dir.as_deref(),
            chaos_seed,
        );
        // Warm restart: if the snapshot dir already holds state from a
        // previous run, load it before opening the edge.
        if let Some(dir) = &snapshot_dir {
            match platform.recover_from(dir) {
                Ok(report) => {
                    if report.truths_restored + report.truths_replayed > 0
                        || report.answers_replayed > 0
                    {
                        println!(
                            "recovered from {}: {} truths from the snapshot, {} replayed \
                             from the log ({} answers replayed)",
                            dir.display(),
                            report.truths_restored,
                            report.truths_replayed,
                            report.answers_replayed
                        );
                    }
                }
                Err(e) => eprintln!("recovery from {} failed: {e}; serving cold", dir.display()),
            }
        }
        let platform = std::sync::Arc::new(platform);
        let gw = Gateway::start(
            std::sync::Arc::clone(&platform),
            GatewayConfig {
                addr,
                handler_threads: workers,
                ..GatewayConfig::default()
            },
        )
        .expect("gateway binds");
        let (from, to) = cities[0].ods[0];
        println!("serving on http://{}", gw.local_addr());
        println!(
            "  GET /route?city={}&o={}&d={}&t=8  — plan a route",
            cities[0].id.0, from.0, to.0
        );
        println!("  GET /stats                        — gateway + platform counters");
        println!("  GET /trace                        — span-level trace report");
        println!("  GET /healthz                      — liveness");
        println!("type \"stop\" (or close stdin) for a graceful shutdown.");
        // Graceful shutdown: block on stdin instead of parking forever.
        // A "stop"/"quit" line — or EOF, so piped deployments can just
        // close the handle — drains the edge before the platform.
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) => break, // EOF
                Ok(_) => {
                    let cmd = line.trim();
                    if cmd.eq_ignore_ascii_case("stop") || cmd.eq_ignore_ascii_case("quit") {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        println!("draining the gateway…");
        gw.shutdown();
        if let Some(dir) = &snapshot_dir {
            match platform.checkpoint() {
                Ok(watermark) => println!(
                    "checkpointed to {} (WAL watermark {watermark})",
                    dir.display()
                ),
                Err(e) => eprintln!("checkpoint failed: {e}"),
            }
        }
        // The joined gateway released its handle; either way `Drop`
        // drains the platform.
        match std::sync::Arc::try_unwrap(platform) {
            Ok(platform) => platform.shutdown(),
            Err(platform) => drop(platform),
        }
        println!("done.");
        return;
    }

    println!(
        "open-loop sweep ({}): Poisson arrivals, {workers} platform workers, \
         85/15 metro/town split (DRR weights {metro_weight}:1), 1.5 s per target rate\n",
        if crowd {
            "crowd-backed resolution"
        } else {
            "machine-only resolution"
        }
    );
    println!(
        "{:>7}  {:>8}  {:>8}  {:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}  {:>7}  {:>6}  {:>8}  {:>9}  {:>7}",
        "req/s",
        "offered",
        "served",
        "shed",
        "shed%",
        "p50",
        "p95",
        "p99",
        "max",
        "truth-hit",
        "fused%",
        "art-hit%",
        "runs",
        "delay",
        "quota-rej",
        "starved"
    );

    // Crowd resolution is orders of magnitude slower than the machine
    // path (PMF fits + simulated worker dialogue), so the crowd sweep
    // probes the knee at much lower offered rates.
    let rates: &[f64] = if crowd {
        &[10.0, 25.0, 50.0]
    } else {
        &[250.0, 500.0, 1000.0, 2000.0]
    };
    for &rate in rates {
        // A fresh platform per rate so one rate's warm truth store does
        // not flatter the next.
        let (platform, cities) = build_platform(
            &metro,
            &metro_world,
            &town,
            &town_world,
            workers,
            crowd,
            batch,
            adaptive,
            trace,
            metro_weight,
            None,
            chaos_seed,
        );

        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ rate as u64);
        let duration = Duration::from_millis(1500);
        let start = Instant::now();
        let mut next_arrival = start;
        let mut offered = 0u64;
        let mut shed = 0u64;
        let mut tickets: Vec<Ticket> = Vec::with_capacity((rate * 2.0) as usize);
        // The open loop: arrivals fire on the Poisson clock whether or
        // not earlier requests finished.
        loop {
            let now = Instant::now();
            if now >= start + duration {
                break;
            }
            if now < next_arrival {
                std::thread::sleep(
                    next_arrival
                        .saturating_duration_since(now)
                        .min(Duration::from_micros(200)),
                );
                continue;
            }
            // Exponential inter-arrival at the target rate.
            let u: f64 = rng.random_range(0.0..1.0);
            next_arrival += Duration::from_secs_f64(-(1.0 - u).ln() / rate);

            let pick: f64 = rng.random_range(0.0..1.0);
            let city = if pick < cities[0].share {
                &cities[0]
            } else {
                &cities[1]
            };
            let (from, to) = city.ods[rng.random_range(0..city.ods.len())];
            let hour = 7.0 + rng.random_range(0..4) as f64 * 0.5;
            let req = Request::to_city(city.id, from, to, TimeOfDay::from_hours(hour));
            offered += 1;
            match platform.submit(req) {
                Ok(ticket) => tickets.push(ticket),
                Err(ServiceError::Busy) => shed += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }

        // Join everything still in flight, then read sojourn latencies
        // (recorded at completion time, so joining order is irrelevant).
        let mut latencies: Vec<Duration> = Vec::with_capacity(tickets.len());
        for ticket in &tickets {
            while !ticket.is_done() {
                std::thread::sleep(Duration::from_micros(200));
            }
            latencies.push(ticket.latency().expect("completed ticket"));
        }
        latencies.sort_unstable();

        let agg = platform.stats();
        assert!(agg.is_consistent(), "admission accounting must balance");
        // The platform's own Busy count must agree with what this load
        // generator observed at submit time — surfacing the absolute
        // shed count per rate step (not just a percentage) makes the
        // admission controller's work visible even in machine-only runs
        // where the percentage rounds to 0.0.
        assert_eq!(
            agg.rejected_busy, shed,
            "platform Busy count must match submit-side shed count"
        );
        let truth_rate = agg.aggregate.truth_hit_rate();
        println!(
            "{rate:>7.0}  {offered:>8}  {:>8}  {shed:>6}  {:>5.1}%  {:>9.2?}  {:>9.2?}  {:>9.2?}  {:>9.2?}  {:>8.1}%  {:>5.1}%  {:>6.1}%  {:>6}  {:>8.0?}  {:>9}  {:>7}",
            latencies.len(),
            100.0 * shed as f64 / offered.max(1) as f64,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(Duration::ZERO),
            100.0 * truth_rate,
            100.0 * agg.aggregate.fused_mining_ratio(),
            100.0 * agg.aggregate.artifact_hit_rate(),
            agg.batch_runs,
            agg.batch_delay,
            agg.aggregate.crowd_quota_rejections,
            agg.aggregate.crowd_starved,
        );
        // The per-city ledgers behind the aggregate row: each city's
        // DRR weight, admissions, sheds and where its adaptive
        // controller settled (window + run-size cap).
        let per_city: Vec<String> = [("metro", &cities[0]), ("town", &cities[1])]
            .iter()
            .map(|(name, c)| {
                let row = &agg.per_city[c.id.index()];
                format!(
                    "{name} w{} adm {} shed {} delay {:.0?} cap {}",
                    row.weight, row.admitted, row.rejected_busy, row.batch_delay, row.max_batch
                )
            })
            .collect();
        println!("         per-city: {}", per_city.join(" | "));
        // The chaos line: what the engine injected this step, each
        // crowd city's breaker state, and whether the step ran
        // degraded (any breaker away from closed = machine-only or
        // probing its way back).
        if let Some(c) = &agg.chaos {
            let breakers: Vec<String> = [("metro", &cities[0]), ("town", &cities[1])]
                .iter()
                .filter_map(|(name, city)| {
                    let b = agg.per_city[city.id.index()].breaker.as_ref()?;
                    Some(format!(
                        "{name} {} (trips {} probes {} recoveries {} machine {})",
                        b.state.name(),
                        b.trips,
                        b.probes,
                        b.recoveries,
                        b.machine_serves
                    ))
                })
                .collect();
            let degraded = agg.per_city.iter().any(|row| {
                row.breaker
                    .as_ref()
                    .is_some_and(|b| b.state != cp_service::BreakerState::Closed)
            });
            println!(
                "         chaos: injected {} (no-show {} slow-answer {} slow-worker {} \
                 stall {} panic {} io {} churn {})  degraded {}  breaker [{}]",
                c.total_injected(),
                c.crowd_no_shows,
                c.crowd_slow_answers,
                c.slow_workers,
                c.stalled_workers,
                c.resolver_panics,
                c.durability_io_errors,
                c.generation_bumps,
                degraded,
                if breakers.is_empty() {
                    "none".to_string()
                } else {
                    breakers.join(" | ")
                },
            );
        }
        if trace {
            let stages = &agg.aggregate.stages;
            let p95 = percentile(&latencies, 0.95);
            let mut ranked: Vec<Stage> = Stage::ALL
                .into_iter()
                .filter(|s| stages[s.index()].count > 0)
                .collect();
            ranked.sort_by_key(|s| std::cmp::Reverse(stages[s.index()].p95));
            let top: Vec<String> = ranked
                .iter()
                .take(3)
                .map(|s| {
                    let share = if p95.is_zero() {
                        0.0
                    } else {
                        100.0 * stages[s.index()].p95.as_secs_f64() / p95.as_secs_f64()
                    };
                    format!("{} {:.0}%", s.name(), share)
                })
                .collect();
            let attributed: Duration = stages.iter().map(|s| s.total).sum();
            let lock_wait: Duration = agg.aggregate.locks.iter().map(|l| l.wait).sum();
            let lock_pct = if attributed.is_zero() {
                0.0
            } else {
                100.0 * lock_wait.as_secs_f64() / attributed.as_secs_f64()
            };
            println!(
                "         trace: top stages by p95 share [{}]  lock-wait {lock_pct:.2}% of attributed time",
                top.join(", ")
            );
        }
        platform.shutdown();
    }
    println!("\ndone in {:.1?}", t0.elapsed());
}
