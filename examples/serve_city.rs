//! Serving-layer throughput demo: one shared Medium world, a skewed
//! request stream (commute corridors, repeated keys), machine-only
//! resolution — measured at 1, 2, 4 and 8 worker threads.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_city
//! ```

use cp_mining::CandidateGenerator;
use cp_service::{MachineResolver, Request, RouteService, ServiceConfig};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("building Medium world…");
    let world = SimWorld::build(Scale::Medium, 42).expect("world generation");
    let generator = CandidateGenerator::new(&world.city.graph, &world.trips.trips);
    println!(
        "  {} intersections, {} trips, built in {:.1?}\n",
        world.city.graph.node_count(),
        world.trips.trips.len(),
        t0.elapsed()
    );

    // A skewed stream: 600 distinct OD/time keys, each requested 5 times
    // (urban demand is repetitive — that is what the serving layer
    // monetises).
    let distinct = 600;
    let repeats = 5;
    let ods = world.request_stream(distinct, 4, 777);
    let mut requests = Vec::with_capacity(distinct * repeats);
    for _round in 0..repeats {
        for (i, &(from, to)) in ods.iter().enumerate() {
            requests.push(Request {
                from,
                to,
                departure: TimeOfDay::from_hours(7.0 + (i % 4) as f64 * 0.5),
            });
        }
    }
    println!(
        "serving {} requests ({} distinct keys × {} repeats); \
         hardware parallelism: {}\n",
        requests.len(),
        distinct,
        repeats,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!(
        "{:>7}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "threads", "req/s", "truth-hit", "dedup", "cache-hit", "lat p50", "lat p95"
    );

    let mut baseline_rps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let cfg = ServiceConfig {
            workers,
            ..ServiceConfig::default()
        };
        let service = RouteService::new(&world.city.graph, &generator, cfg.clone());
        let t = Instant::now();
        let results = service.serve(&requests, |_| {
            MachineResolver::new(&world.city.graph, cfg.core.clone())
        });
        let elapsed = t.elapsed();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, requests.len(), "all requests must be served");
        let rps = requests.len() as f64 / elapsed.as_secs_f64();
        if workers == 1 {
            baseline_rps = rps;
        }
        let s = service.stats();
        println!(
            "{workers:>7}  {rps:>10.0}  {:>8.1}%  {:>9}  {:>8.1}%  {:>9.2?}  {:>9.2?}   ({:.2}x)",
            100.0 * s.truth_hit_rate(),
            s.dedup_hits,
            100.0 * s.cache_hit_rate(),
            s.latency.p50,
            s.latency.p95,
            rps / baseline_rps,
        );
    }
    println!("\ndone in {:.1?}", t0.elapsed());
}
